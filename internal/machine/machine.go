// Package machine loads and saves complete machine descriptions — the
// local-memory configuration, SM timing parameters, and energy constants —
// as JSON files, so the cmd tools can evaluate machines other than the
// paper's Table 2/3 design point without recompiling.
package machine

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/config"
	"repro/internal/energy"
	"repro/internal/sched"
	"repro/internal/sm"
)

// Description is the JSON schema. Zero-valued fields take the paper's
// defaults on Load, so partial files work.
type Description struct {
	// Design is "partitioned", "unified", or "fermi-like".
	Design string `json:"design"`
	// Capacities in KB.
	RFKB     int `json:"rf_kb"`
	SharedKB int `json:"shared_kb"`
	CacheKB  int `json:"cache_kb"`
	// MaxThreads caps resident threads (0 = architectural limit).
	MaxThreads int `json:"max_threads,omitempty"`

	Timing struct {
		ALULatency        int64 `json:"alu_latency,omitempty"`
		SFULatency        int64 `json:"sfu_latency,omitempty"`
		SharedLatency     int64 `json:"shared_latency,omitempty"`
		CacheLatency      int64 `json:"cache_latency,omitempty"`
		TexLatency        int64 `json:"tex_latency,omitempty"`
		DRAMLatency       int64 `json:"dram_latency,omitempty"`
		DRAMBytesPerCycle int   `json:"dram_bytes_per_cycle,omitempty"`
		DRAMRowBytes      int   `json:"dram_row_bytes,omitempty"`
		DRAMRowMissCycles int64 `json:"dram_row_miss_cycles,omitempty"`
		ActiveWarps       int   `json:"active_warps,omitempty"`
		DeschedulePast    int64 `json:"deschedule_past,omitempty"`
		// MaxMSHRs bounds outstanding cache misses (0 = unbounded, the
		// paper's model).
		MaxMSHRs int `json:"max_mshrs,omitempty"`
		// Scheduler is the warp-scheduling policy: "twolevel" (default)
		// or "gto".
		Scheduler         string `json:"scheduler,omitempty"`
		AggressiveScatter bool   `json:"aggressive_scatter,omitempty"`
		WriteBackCache    bool   `json:"write_back_cache,omitempty"`
	} `json:"timing"`

	Energy struct {
		SMDynamicW       float64 `json:"sm_dynamic_w,omitempty"`
		SMCoreLeakageW   float64 `json:"sm_core_leakage_w,omitempty"`
		SRAMLeakageMWKB  float64 `json:"sram_leakage_mw_per_kb,omitempty"`
		DRAMPJPerBit     float64 `json:"dram_pj_per_bit,omitempty"`
		UnifiedWiringMul float64 `json:"unified_wiring_multiplier,omitempty"`
	} `json:"energy"`
}

// Default returns the paper's machine.
func Default() Description {
	var d Description
	d.Design = "partitioned"
	d.RFKB = config.BaselineRFBytes >> 10
	d.SharedKB = config.BaselineSharedBytes >> 10
	d.CacheKB = config.BaselineCacheBytes >> 10
	p := sm.DefaultParams()
	d.Timing.ALULatency = p.ALULatency
	d.Timing.SFULatency = p.SFULatency
	d.Timing.SharedLatency = p.SharedLatency
	d.Timing.CacheLatency = p.CacheLatency
	d.Timing.TexLatency = p.TexLatency
	d.Timing.DRAMLatency = p.DRAM.LatencyCycles
	d.Timing.DRAMBytesPerCycle = p.DRAM.BytesPerCycle
	d.Timing.ActiveWarps = p.ActiveWarps
	d.Timing.DeschedulePast = p.DeschedulePast
	e := energy.DefaultParams()
	d.Energy.SMDynamicW = e.SMDynamicPower
	d.Energy.SMCoreLeakageW = e.SMCoreLeakage
	d.Energy.SRAMLeakageMWKB = e.SRAMLeakagePerKB * 1e3
	d.Energy.DRAMPJPerBit = e.DRAMEnergyPerBit * 1e12
	d.Energy.UnifiedWiringMul = e.UnifiedWiringOverhead
	return d
}

// Resolve converts the description into the simulator's parameter types,
// filling unset fields with the paper's defaults.
func (d Description) Resolve() (config.MemConfig, sm.Params, energy.Params, error) {
	var cfg config.MemConfig
	switch d.Design {
	case "", "partitioned":
		cfg.Design = config.Partitioned
	case "unified":
		cfg.Design = config.Unified
	case "fermi-like", "fermi":
		cfg.Design = config.FermiLike
	default:
		return cfg, sm.Params{}, energy.Params{}, fmt.Errorf("machine: unknown design %q", d.Design)
	}
	if d.RFKB == 0 && d.SharedKB == 0 && d.CacheKB == 0 {
		// An entirely unspecified capacity split takes the paper's
		// baseline, like every other zero-valued field; partially
		// specified splits stay literal (a deliberate zero capacity is
		// meaningful, e.g. cache-less sweeps).
		d.RFKB = config.BaselineRFBytes >> 10
		d.SharedKB = config.BaselineSharedBytes >> 10
		d.CacheKB = config.BaselineCacheBytes >> 10
	}
	cfg.RFBytes = d.RFKB << 10
	cfg.SharedBytes = d.SharedKB << 10
	cfg.CacheBytes = d.CacheKB << 10
	cfg.MaxThreads = d.MaxThreads
	if err := cfg.Validate(); err != nil {
		return cfg, sm.Params{}, energy.Params{}, err
	}

	p := sm.DefaultParams()
	setI64 := func(dst *int64, v int64) {
		if v != 0 {
			*dst = v
		}
	}
	setI64(&p.ALULatency, d.Timing.ALULatency)
	setI64(&p.SFULatency, d.Timing.SFULatency)
	setI64(&p.SharedLatency, d.Timing.SharedLatency)
	setI64(&p.CacheLatency, d.Timing.CacheLatency)
	setI64(&p.TexLatency, d.Timing.TexLatency)
	setI64(&p.DRAM.LatencyCycles, d.Timing.DRAMLatency)
	if d.Timing.DRAMBytesPerCycle != 0 {
		p.DRAM.BytesPerCycle = d.Timing.DRAMBytesPerCycle
	}
	if d.Timing.DRAMRowBytes > 0 {
		p.DRAM.RowBytes = uint32(d.Timing.DRAMRowBytes)
		p.DRAM.RowMissPenalty = d.Timing.DRAMRowMissCycles
	}
	if d.Timing.ActiveWarps != 0 {
		p.ActiveWarps = d.Timing.ActiveWarps
	}
	setI64(&p.DeschedulePast, d.Timing.DeschedulePast)
	if d.Timing.MaxMSHRs > 0 {
		p.MaxMSHRs = d.Timing.MaxMSHRs
	}
	pol, err := sched.ParsePolicy(d.Timing.Scheduler)
	if err != nil {
		return cfg, sm.Params{}, energy.Params{}, fmt.Errorf("machine: %w", err)
	}
	p.Scheduler = pol
	p.AggressiveScatter = d.Timing.AggressiveScatter
	p.WriteBackCache = d.Timing.WriteBackCache

	e := energy.DefaultParams()
	setF := func(dst *float64, v float64) {
		if v != 0 {
			*dst = v
		}
	}
	setF(&e.SMDynamicPower, d.Energy.SMDynamicW)
	setF(&e.SMCoreLeakage, d.Energy.SMCoreLeakageW)
	setF(&e.SRAMLeakagePerKB, d.Energy.SRAMLeakageMWKB*1e-3)
	setF(&e.DRAMEnergyPerBit, d.Energy.DRAMPJPerBit*1e-12)
	setF(&e.UnifiedWiringOverhead, d.Energy.UnifiedWiringMul)
	return cfg, p, e, nil
}

// Load reads and resolves a machine file.
func Load(path string) (config.MemConfig, sm.Params, energy.Params, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return config.MemConfig{}, sm.Params{}, energy.Params{}, err
	}
	var d Description
	if err := json.Unmarshal(data, &d); err != nil {
		return config.MemConfig{}, sm.Params{}, energy.Params{}, fmt.Errorf("machine: %s: %w", path, err)
	}
	return d.Resolve()
}

// Save writes a machine file (pretty-printed).
func Save(path string, d Description) error {
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
