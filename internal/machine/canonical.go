package machine

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/config"
	"repro/internal/energy"
	"repro/internal/sm"
)

// Describe is the inverse of Resolve: it renders resolved simulator
// parameters back into the JSON schema with every field filled in. Two
// descriptions that Resolve to the same simulator state Describe to the
// same value, which is what makes Canonical and Key well defined.
//
// Describe covers exactly the surface Description can express; resolved
// parameters outside it (sm.Params.GreedyScheduler) have no JSON field
// today and therefore cannot differ between two descriptions.
func Describe(cfg config.MemConfig, p sm.Params, e energy.Params) Description {
	var d Description
	d.Design = cfg.Design.String()
	d.RFKB = cfg.RFBytes >> 10
	d.SharedKB = cfg.SharedBytes >> 10
	d.CacheKB = cfg.CacheBytes >> 10
	d.MaxThreads = cfg.MaxThreads
	d.Timing.ALULatency = p.ALULatency
	d.Timing.SFULatency = p.SFULatency
	d.Timing.SharedLatency = p.SharedLatency
	d.Timing.CacheLatency = p.CacheLatency
	d.Timing.TexLatency = p.TexLatency
	d.Timing.DRAMLatency = p.DRAM.LatencyCycles
	d.Timing.DRAMBytesPerCycle = p.DRAM.BytesPerCycle
	d.Timing.DRAMRowBytes = int(p.DRAM.RowBytes)
	d.Timing.DRAMRowMissCycles = p.DRAM.RowMissPenalty
	d.Timing.ActiveWarps = p.ActiveWarps
	d.Timing.DeschedulePast = p.DeschedulePast
	d.Timing.MaxMSHRs = p.MaxMSHRs
	d.Timing.Scheduler = string(p.Scheduler)
	if d.Timing.Scheduler == "" {
		// The zero sched.Policy means twolevel; spell it out so the
		// rendered description never depends on the zero-value convention.
		d.Timing.Scheduler = "twolevel"
	}
	d.Timing.AggressiveScatter = p.AggressiveScatter
	d.Timing.WriteBackCache = p.WriteBackCache
	d.Energy.SMDynamicW = e.SMDynamicPower
	d.Energy.SMCoreLeakageW = e.SMCoreLeakage
	d.Energy.SRAMLeakageMWKB = e.SRAMLeakagePerKB * 1e3
	d.Energy.DRAMPJPerBit = e.DRAMEnergyPerBit * 1e12
	d.Energy.UnifiedWiringMul = e.UnifiedWiringOverhead
	return d
}

// Canonical resolves the description and renders it back fully filled:
// zero-valued fields take the paper's defaults, design and scheduler
// aliases collapse to their canonical spelling ("fermi" to "fermi-like",
// "" to "twolevel"), and capacities round-trip through the simulator's
// byte values. Descriptions that configure identical simulations are
// equal after Canonical; ones that differ in any simulated parameter are
// not.
func (d Description) Canonical() (Description, error) {
	cfg, p, e, err := d.Resolve()
	if err != nil {
		return Description{}, err
	}
	return Describe(cfg, p, e), nil
}

// CanonicalJSON returns the deterministic byte serialization of the
// canonical form: encoding/json emits struct fields in declaration
// order, so equal canonical descriptions produce equal bytes.
func CanonicalJSON(d Description) ([]byte, error) {
	c, err := d.Canonical()
	if err != nil {
		return nil, err
	}
	return json.Marshal(c)
}

// Key returns the canonical content hash of a machine description — the
// machine half of the simulation service's result-cache key. Requests
// that spell the same machine differently (field order, omitted
// defaults, design aliases) share a key; any change to a simulated
// parameter yields a different one.
func Key(d Description) (string, error) {
	b, err := CanonicalJSON(d)
	if err != nil {
		return "", fmt.Errorf("machine: canonical key: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}
