package serve

import (
	"container/list"
	"sync"
)

// resultCache is a bounded LRU mapping canonical request keys to fully
// marshaled response bodies. Storing bytes rather than structures is
// what makes the cache-hit contract trivial to honor: a hit replays the
// exact bytes the first computation produced, so identical requests get
// byte-identical responses by construction.
//
// This layer memoizes whole results per canonical request; the
// process-wide trace cache underneath (internal/workloads) memoizes the
// per-warp instruction streams that different requests share. A result
// miss that reuses a cached trace is still far cheaper than a cold run.
type resultCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recent
	entries map[string]*list.Element

	hits, misses int64
	bytes        int64
}

type cacheEntry struct {
	key  string
	body []byte
}

// newResultCache returns a cache bounded to capacity entries;
// capacity < 1 is treated as 1.
func newResultCache(capacity int) *resultCache {
	if capacity < 1 {
		capacity = 1
	}
	return &resultCache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[string]*list.Element, capacity),
	}
}

// get returns the cached body for key and whether it was present,
// promoting the entry to most-recently-used on a hit.
func (c *resultCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// peek is get without touching the hit/miss counters, for rechecks on
// paths where the caller already recorded the lookup.
func (c *resultCache) peek(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// put stores body under key, evicting the least-recently-used entry
// when the bound is exceeded. The caller must not mutate body after.
func (c *resultCache) put(key string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		// A singleflight leader already stored this key; keep the first
		// body so every response stays byte-identical.
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, body: body})
	c.bytes += int64(len(body))
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		e := oldest.Value.(*cacheEntry)
		c.order.Remove(oldest)
		delete(c.entries, e.key)
		c.bytes -= int64(len(e.body))
	}
}

// stats returns (hits, misses, entries, approximate bytes).
func (c *resultCache) stats() (hits, misses int64, entries int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.order.Len(), c.bytes
}
