package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"repro/api"
	"repro/internal/parallel"
)

// TestRunStreams exercises the multi-tenant path end to end: two
// kernels co-resident on one SM, per-stream attribution in the
// response, and the conservation invariant (attributed counters sum
// exactly to the aggregate).
func TestRunStreams(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	const req = `{"streams":[{"kernel":"vectoradd"},{"kernel":"dwthaar1d"}]}`
	resp, body := do(t, ts, http.MethodPost, "/v1/run", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/run: %d: %s", resp.StatusCode, body)
	}
	var rr api.RunResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Kernel != "vectoradd+dwthaar1d" {
		t.Errorf("Kernel = %q, want the joined stream label", rr.Kernel)
	}
	if len(rr.Streams) != 2 {
		t.Fatalf("len(Streams) = %d, want 2", len(rr.Streams))
	}
	var warpInsts, threadInsts, dram int64
	for i, st := range rr.Streams {
		if st.Counters == nil {
			t.Fatalf("stream %d has no counters", i)
		}
		if st.Occupancy.CTAs < 1 {
			t.Errorf("stream %d CTAs = %d, want >= 1 (both co-tenants resident)", i, st.Occupancy.CTAs)
		}
		if st.Counters.Cycles <= 0 || st.Counters.Cycles > rr.Counters.Cycles {
			t.Errorf("stream %d Cycles = %d, want in (0, %d]", i, st.Counters.Cycles, rr.Counters.Cycles)
		}
		warpInsts += st.Counters.WarpInsts
		threadInsts += st.Counters.ThreadInsts
		dram += st.Counters.DRAMReadBytes + st.Counters.DRAMWriteBytes
	}
	if warpInsts != rr.Counters.WarpInsts {
		t.Errorf("sum of stream WarpInsts = %d, aggregate = %d", warpInsts, rr.Counters.WarpInsts)
	}
	if threadInsts != rr.Counters.ThreadInsts {
		t.Errorf("sum of stream ThreadInsts = %d, aggregate = %d", threadInsts, rr.Counters.ThreadInsts)
	}
	if want := rr.Counters.DRAMReadBytes + rr.Counters.DRAMWriteBytes; dram != want {
		t.Errorf("sum of stream DRAM bytes = %d, aggregate = %d", dram, want)
	}
	// The joint occupancy is the sum of the per-stream shares.
	if got := rr.Streams[0].Occupancy.CTAs + rr.Streams[1].Occupancy.CTAs; got != rr.Occupancy.CTAs {
		t.Errorf("stream CTAs sum = %d, joint = %d", got, rr.Occupancy.CTAs)
	}
}

// TestStreamsCanonicalKeys pins the cache-key contract for the streams
// field: a single-entry streams list collapses to the plain spelling,
// explicit stream defaults share the multi-stream key, and genuinely
// different mixes get their own keys.
func TestStreamsCanonicalKeys(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	// Single-entry streams ≡ plain request: one cache entry, identical
	// bytes (including the response's canonical key).
	resp1, body1 := do(t, ts, http.MethodPost, "/v1/run", `{"kernel":"vectoradd"}`)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("plain POST: %d: %s", resp1.StatusCode, body1)
	}
	resp2, body2 := do(t, ts, http.MethodPost, "/v1/run", `{"streams":[{"kernel":"vectoradd"}]}`)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("single-stream POST: %d: %s", resp2.StatusCode, body2)
	}
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("single-entry streams X-Cache = %q, want hit (canonical collapse)", got)
	}
	if !bytes.Equal(body1, body2) {
		t.Error("single-entry streams body differs from the plain spelling")
	}

	// Multi-stream spellings with defaults made explicit share a key.
	resp3, body3 := do(t, ts, http.MethodPost, "/v1/run",
		`{"streams":[{"kernel":"vectoradd"},{"kernel":"dwthaar1d"}]}`)
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("multi POST: %d: %s", resp3.StatusCode, body3)
	}
	resp4, body4 := do(t, ts, http.MethodPost, "/v1/run",
		`{"streams":[{"kernel":"vectoradd","seed":1},{"kernel":"dwthaar1d","seed":1}]}`)
	if got := resp4.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("explicit-defaults multi X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(body3, body4) {
		t.Error("equivalent multi-stream spellings returned different bodies")
	}

	// Stream order and content are key-defining.
	resp5, _ := do(t, ts, http.MethodPost, "/v1/run",
		`{"streams":[{"kernel":"dwthaar1d"},{"kernel":"vectoradd"}]}`)
	if got := resp5.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("reordered streams X-Cache = %q, want miss", got)
	}
}

// TestStreamsValidation covers the client-error paths of the streams
// field.
func TestStreamsValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	for _, tc := range []struct{ name, body, wantFrag string }{
		{"exclusive", `{"kernel":"vectoradd","streams":[{"kernel":"dwthaar1d"},{"kernel":"sad"}]}`,
			"mutually exclusive"},
		{"unknown", `{"streams":[{"kernel":"vectoradd"},{"kernel":"nosuch"}]}`, "streams[1]"},
		{"missing", `{"streams":[{"kernel":"vectoradd"},{}]}`, "streams[1]"},
	} {
		resp, body := do(t, ts, http.MethodPost, "/v1/run", tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400: %s", tc.name, resp.StatusCode, body)
		}
		if !bytes.Contains(body, []byte(tc.wantFrag)) {
			t.Errorf("%s: body %s does not mention %q", tc.name, body, tc.wantFrag)
		}
	}
}

// TestStreamsBatchDeterminism is the multi-tenant extension of the
// service determinism pin: a batch mixing streamed and plain items
// produces byte-identical bodies under j=1 and j=8.
func TestStreamsBatchDeterminism(t *testing.T) {
	defer parallel.SetWorkers(0)
	const batch = `{"runs":[
		{"streams":[{"kernel":"vectoradd"},{"kernel":"dwthaar1d"}]},
		{"kernel":"vectoradd"},
		{"streams":[{"kernel":"dwthaar1d"},{"kernel":"vectoradd"}]},
		{"streams":[{"kernel":"vectoradd"},{"kernel":"vectoradd"}]}
	]}`
	bodies := make([][]byte, 0, 2)
	for _, j := range []int{1, 8} {
		parallel.SetWorkers(j)
		_, ts := newTestServer(t, Options{InFlight: 4})
		resp, body := do(t, ts, http.MethodPost, "/v1/batch", batch)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("j=%d: status %d: %s", j, resp.StatusCode, body)
		}
		bodies = append(bodies, body)
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Error("streamed batch bodies differ between j=1 and j=8")
	}
}
