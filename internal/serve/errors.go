package serve

import (
	"fmt"
	"net/http"
	"strconv"

	"repro/api"
)

// The service's error vocabulary lives in the api package (api.Error,
// api.Code*); this file is the serve-side glue: constructors that pin
// each condition to its stable code and status, and the single writer
// every handler funnels non-2xx responses through, so the envelope
// shape — {"error":{"code","message","retry_after_s"}} — cannot drift
// between endpoints.

func errBadRequest(format string, args ...any) *api.Error {
	return &api.Error{
		Code:       api.CodeBadRequest,
		Message:    fmt.Sprintf(format, args...),
		HTTPStatus: http.StatusBadRequest,
	}
}

func errNotFound(format string, args ...any) *api.Error {
	return &api.Error{
		Code:       api.CodeNotFound,
		Message:    fmt.Sprintf(format, args...),
		HTTPStatus: http.StatusNotFound,
	}
}

func errCancelled(msg string) *api.Error {
	return &api.Error{
		Code:       api.CodeCancelled,
		Message:    msg,
		HTTPStatus: http.StatusRequestTimeout,
	}
}

func errNotReady(msg string) *api.Error {
	return &api.Error{
		Code:       api.CodeNotReady,
		Message:    msg,
		HTTPStatus: http.StatusConflict,
	}
}

func errInfeasible(msg string) *api.Error {
	return &api.Error{
		Code:       api.CodeInfeasible,
		Message:    msg,
		HTTPStatus: http.StatusUnprocessableEntity,
	}
}

// errOverCapacity is the 429 backpressure envelope; retryAfterS becomes
// both the JSON hint and the Retry-After header.
func errOverCapacity(retryAfterS int, format string, args ...any) *api.Error {
	if retryAfterS < 1 {
		retryAfterS = 1
	}
	return &api.Error{
		Code:        api.CodeOverCapacity,
		Message:     fmt.Sprintf(format, args...),
		RetryAfterS: retryAfterS,
		HTTPStatus:  http.StatusTooManyRequests,
	}
}

func errInternal(format string, args ...any) *api.Error {
	return &api.Error{
		Code:       api.CodeInternal,
		Message:    fmt.Sprintf(format, args...),
		HTTPStatus: http.StatusInternalServerError,
	}
}

func errDeadline(msg string) *api.Error {
	return &api.Error{
		Code:       api.CodeDeadline,
		Message:    msg,
		HTTPStatus: http.StatusGatewayTimeout,
	}
}

// errStatus defaults an envelope's HTTP status when a constructor
// outside this file (or a decoded body) left it unset.
func errStatus(e *api.Error) int {
	if e.HTTPStatus != 0 {
		return e.HTTPStatus
	}
	return http.StatusInternalServerError
}

// errorBytes marshals an envelope the way every response body is
// marshaled (compact JSON + newline), for paths that cache or assemble
// error bodies instead of writing them straight to a ResponseWriter.
func errorBytes(e *api.Error) []byte {
	return marshalBody(api.ErrorBody{Error: e})
}

// writeError writes the unified error envelope, including the
// Retry-After header when the envelope carries a hint.
func writeError(w http.ResponseWriter, e *api.Error) {
	if e.RetryAfterS > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(e.RetryAfterS))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(errStatus(e))
	_, _ = w.Write(errorBytes(e))
}
