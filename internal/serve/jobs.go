package serve

// The /v1/jobs handlers and the two callbacks that drive the generic
// job engine (internal/jobs): jobResolve turns a raw JobRequest body
// into an executable plan, jobExec settles one item through the same
// cache -> store -> coalesce -> simulate pipeline the synchronous
// endpoints use. Because both sides share compute() and
// batchItemBody(), a job's final result is byte-identical to the
// equivalent synchronous response — and a restarted job finds its
// completed items in the persistent store instead of re-simulating.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"repro/api"
	"repro/internal/campaign"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/jobs"
	"repro/internal/occupancy"
	"repro/internal/workloads"
)

// maxJobBody bounds a job submission body (a 10k-point sweep is ~2MB).
const maxJobBody = 8 << 20

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	s.metrics.jobRequests.Add(1)
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxJobBody))
	if err != nil {
		s.metrics.clientErrors.Add(1)
		writeError(w, errBadRequest("reading request body: %v", err))
		return
	}
	job, err := s.engine.Submit(body)
	if err != nil {
		var ae *api.Error
		switch {
		case errors.As(err, &ae):
			s.metrics.clientErrors.Add(1)
			writeError(w, ae)
		case errors.Is(err, jobs.ErrStorage):
			s.metrics.serverErrors.Add(1)
			writeError(w, errInternal("%s", err.Error()))
		default:
			s.metrics.clientErrors.Add(1)
			writeError(w, errBadRequest("%s", err.Error()))
		}
		return
	}
	writeJSON(w, http.StatusAccepted, job)
}

func (s *Server) handleJobList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.engine.List())
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.engine.Get(id)
	if !ok {
		writeError(w, errNotFound("no job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.engine.Cancel(id)
	if !ok {
		writeError(w, errNotFound("no job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	status, body, err := s.engine.Result(id)
	switch {
	case errors.Is(err, jobs.ErrNotFound):
		writeError(w, errNotFound("no job %q", id))
	case errors.Is(err, jobs.ErrNotReady):
		writeError(w, errNotReady(fmt.Sprintf(
			"job %q has not finished; poll GET /v1/jobs/%s", id, id)))
	case err != nil:
		writeError(w, errInternal("%s", err.Error()))
	default:
		writeBody(w, status, body, "job")
	}
}

// handleJobEvents streams a job's event log as server-sent events:
// replayed history first, then live events, ending after the terminal
// "done" event (or when the client goes away).
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sub, ok := s.engine.Subscribe(id)
	if !ok {
		writeError(w, errNotFound("no job %q", id))
		return
	}
	defer sub.Close()
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, errInternal("streaming unsupported by this connection"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	writeEvent := func(ev jobs.Event) {
		fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, ev.Data)
		fl.Flush()
	}
	for _, ev := range sub.Replay {
		writeEvent(ev)
	}
	for {
		select {
		case ev, open := <-sub.C:
			if !open {
				return
			}
			writeEvent(ev)
		case <-r.Context().Done():
			return
		}
	}
}

// jobResolve is the engine's Resolve callback: raw body -> Plan. The
// errors it returns surface as the submitter's 400 (or, on restart, as
// a failed job), so they are *api.Error values.
func (s *Server) jobResolve(request []byte) (jobs.Plan, error) {
	var req api.JobRequest
	dec := json.NewDecoder(bytes.NewReader(request))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return jobs.Plan{}, errBadRequest("bad request body: %v", err)
	}
	set := 0
	for _, p := range []bool{req.Run != nil, req.Batch != nil, req.Sweep != nil, req.Experiment != nil, req.Compare != nil} {
		if p {
			set++
		}
	}
	if set != 1 {
		return jobs.Plan{}, errBadRequest(
			"a job must set exactly one of \"run\", \"batch\", \"sweep\", \"experiment\", \"compare\" (got %d)", set)
	}
	switch {
	case req.Run != nil:
		rr, err := s.resolve(*req.Run)
		if err != nil {
			return jobs.Plan{}, errBadRequest("run: %v", err)
		}
		return jobs.Plan{
			Type:     "run",
			Note:     "run " + rr.label(),
			Items:    runItems([]*resolvedRun{rr}),
			Assemble: assembleSingle,
		}, nil
	case req.Batch != nil:
		rrs, aerr := s.resolveBatch(*req.Batch)
		if aerr != nil {
			return jobs.Plan{}, aerr
		}
		return jobs.Plan{
			Type:     "batch",
			Note:     fmt.Sprintf("batch of %d runs", len(rrs)),
			Items:    runItems(rrs),
			Assemble: assembleBatch,
		}, nil
	case req.Sweep != nil:
		breq, note, aerr := s.expandSweep(*req.Sweep)
		if aerr != nil {
			return jobs.Plan{}, aerr
		}
		rrs, rerr := s.resolveBatch(breq)
		if rerr != nil {
			return jobs.Plan{}, rerr
		}
		return jobs.Plan{
			Type:     "sweep",
			Note:     note,
			Items:    runItems(rrs),
			Assemble: assembleBatch,
		}, nil
	case req.Compare != nil:
		// A compare job is its campaign's compiled run matrix pushed
		// through the batch path, so its result bytes are byte-identical
		// to POST /v1/batch of those runs.
		c, err := campaign.New(*req.Compare)
		if err != nil {
			return jobs.Plan{}, errBadRequest("compare: %v", err)
		}
		rrs, rerr := s.resolveBatch(api.BatchRequest{Runs: c.Runs})
		if rerr != nil {
			return jobs.Plan{}, rerr
		}
		return jobs.Plan{
			Type:     "compare",
			Note:     c.Note(),
			Items:    runItems(rrs),
			Assemble: assembleBatch,
		}, nil
	default:
		er, aerr := s.resolveExperiment(*req.Experiment)
		if aerr != nil {
			return jobs.Plan{}, aerr
		}
		return jobs.Plan{
			Type:     "experiment",
			Note:     "experiment " + er.name,
			Items:    []jobs.Item{{Index: 0, Key: er.key, Payload: er}},
			Assemble: assembleSingle,
		}, nil
	}
}

// runItems wraps resolved runs as engine items.
func runItems(rrs []*resolvedRun) []jobs.Item {
	items := make([]jobs.Item, len(rrs))
	for i, rr := range rrs {
		items[i] = jobs.Item{Index: i, Key: rr.key, Probe: rr.probe, Payload: rr}
	}
	return items
}

// assembleSingle is the single-item plan assembly: the job's final
// result IS the item's response.
func assembleSingle(statuses []int, bodies [][]byte) (int, []byte) {
	if len(statuses) != 1 {
		return http.StatusInternalServerError, errorBytes(errInternal("single-item job settled %d items", len(statuses)))
	}
	return statuses[0], bodies[0]
}

// jobExec is the engine's Exec callback: it settles one item through
// the shared pipeline, streaming probe lines and warm-prefix notes back
// through the item context.
func (s *Server) jobExec(ctx context.Context, it jobs.Item, ic *jobs.ItemContext) (int, []byte, string) {
	switch p := it.Payload.(type) {
	case *resolvedRun:
		if p.probe {
			p.probeSink = &lineWriter{emit: ic.Probe}
		}
		if p.warm != nil {
			ic.Note(fmt.Sprintf("warm@%d %s", p.warmCycles, p.kernel.Name))
			defer ic.Note("")
		}
		return s.compute(ctx, p, false)
	case *resolvedExperiment:
		return s.computeExperiment(p)
	default:
		return http.StatusInternalServerError, errorBytes(errInternal("unknown job item payload %T", it.Payload)), "miss"
	}
}

// sweepCapacityAxes and sweepParamAxes are the legal SweepRequest
// resources; parameter axes are divergable across a snapshot and may
// share a warm prefix, capacity axes define the warm-up history and
// may not (the same split cmd/sweep enforces).
var (
	sweepCapacityAxes = map[string]bool{"rf": true, "shared": true, "cache": true}
	sweepParamAxes    = map[string]bool{"mshr": true, "dramlat": true, "drambw": true}
)

// expandSweep turns a SweepRequest into the equivalent BatchRequest —
// one run per point, the swept field overwritten on the base machine —
// plus a human-readable note.
func (s *Server) expandSweep(req api.SweepRequest) (api.BatchRequest, string, *api.Error) {
	if req.Kernel == "" {
		return api.BatchRequest{}, "", errBadRequest("sweep: missing \"kernel\"")
	}
	k, err := workloadForSweep(req)
	if err != nil {
		return api.BatchRequest{}, "", errBadRequest("sweep: %v", err)
	}
	isParam := sweepParamAxes[req.Resource]
	if !isParam && !sweepCapacityAxes[req.Resource] {
		return api.BatchRequest{}, "", errBadRequest(
			"sweep: unknown resource %q (want rf | shared | cache | mshr | dramlat | drambw)", req.Resource)
	}
	if req.WarmCycles != 0 && !isParam {
		return api.BatchRequest{}, "", errBadRequest(
			"sweep: warm_cycles needs a parameter resource (mshr | dramlat | drambw); capacities define the warm-up history and cannot be forked")
	}
	values, err := req.Values()
	if err != nil {
		return api.BatchRequest{}, "", errBadRequest("sweep: %v", err)
	}
	base := req.Machine
	if base.RFKB == 0 && base.SharedKB == 0 && base.CacheKB == 0 {
		// An entirely unspecified split takes the sweep baseline —
		// full-occupancy RF, unbounded shared, baseline cache — exactly
		// cmd/sweep's local default, so only the swept axis constrains
		// the kernel.
		base.RFKB = kbCeil(occupancy.FullOccupancyRFBytes(k.RegsNeeded))
		base.SharedKB = kbCeil(core.UnboundedShared(k))
		base.CacheKB = config.BaselineCacheBytes >> 10
	}
	runs := make([]api.RunRequest, len(values))
	for i, v := range values {
		d := base
		switch req.Resource {
		case "rf":
			d.RFKB = v
		case "shared":
			d.SharedKB = v
		case "cache":
			d.CacheKB = v
		case "mshr":
			d.Timing.MaxMSHRs = v
		case "dramlat":
			d.Timing.DRAMLatency = int64(v)
		case "drambw":
			d.Timing.DRAMBytesPerCycle = v
		}
		runs[i] = api.RunRequest{
			Kernel:        req.Kernel,
			BF:            req.BF,
			Machine:       d,
			RegsPerThread: req.RegsPerThread,
			Seed:          req.Seed,
			TimeoutMS:     req.TimeoutMS,
		}
	}
	note := fmt.Sprintf("sweep %s %s %d..%d step %s (%d points)",
		k.Name, req.Resource, req.From, req.To, req.Step, len(values))
	return api.BatchRequest{Runs: runs, WarmCycles: req.WarmCycles}, note, nil
}

// workloadForSweep resolves the sweep's kernel (for baseline sizing).
func workloadForSweep(req api.SweepRequest) (*workloads.Kernel, error) {
	if req.Kernel == "needle" && req.BF != 0 {
		return workloads.NeedleKernel(req.BF), nil
	}
	return workloads.ByName(req.Kernel)
}

// kbCeil converts bytes to whole KB, rounding up.
func kbCeil(b int) int { return (b + 1023) >> 10 }

// lineWriter splits a probe's NDJSON byte stream into lines and hands
// each complete line to emit — the bridge from the probe's io.Writer
// contract to the job engine's per-line probe events.
type lineWriter struct {
	emit func([]byte)
	buf  []byte
}

func (lw *lineWriter) Write(p []byte) (int, error) {
	lw.buf = append(lw.buf, p...)
	for {
		i := bytes.IndexByte(lw.buf, '\n')
		if i < 0 {
			break
		}
		lw.emit(lw.buf[:i+1])
		lw.buf = lw.buf[i+1:]
	}
	return len(p), nil
}
