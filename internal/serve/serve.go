// Package serve is the simulation service: a long-running HTTP/JSON
// front end that turns the one-shot CLI workflow (smsim, paper, sweep)
// into a shared, amortized process — the repository's first
// inference-serving-shaped component: batching, caching, backpressure,
// and determinism under concurrency.
//
// Endpoints (all request and response bodies are JSON):
//
//	POST /v1/run         one kernel simulation        -> RunResponse
//	POST /v1/batch       many simulations, fanned out -> BatchResponse
//	POST /v1/experiment  a named paper experiment     -> ExperimentResponse
//	GET  /v1/kernels     the benchmark registry       -> []KernelInfo
//	GET  /healthz        liveness                     -> {"status":"ok"}
//	GET  /metrics        counters, cache ratios, queue depth, sim-time
//	                     histogram                    -> Snapshot
//
// Three properties define the service:
//
//   - Canonical result caching. Every run request is canonicalized —
//     machine JSON resolved and re-rendered with defaults filled and
//     aliases collapsed (machine.Describe), kernel and register budget
//     clamped the way the simulator clamps them — and hashed into a
//     deterministic key. Completed response bodies are memoized in a
//     bounded LRU keyed by that hash, layered over the process-wide
//     trace cache (internal/workloads), so a repeated request is served
//     from memory with a byte-identical body (the X-Cache header says
//     hit or miss). Identical requests in flight at the same time are
//     coalesced: one simulates, the rest wait for its bytes.
//
//   - Bounded admission. A parallel.Gate bounds how many requests
//     simulate concurrently, with a bounded wait queue behind the
//     slots; beyond that the service answers 429 with a Retry-After
//     hint instead of queueing without bound. Batch items fan out
//     through parallel.Map under the process worker budget
//     (parallel.SetWorkers), which keeps batch responses byte-identical
//     for every worker count. Per-request deadlines flow through
//     core.RunCtx into the simulator's cycle loop; an exceeded deadline
//     answers 504.
//
//   - Deterministic bodies. The simulator is deterministic, responses
//     are marshaled once and replayed from cache as raw bytes, and
//     nothing time- or order-dependent is ever written into a response
//     body (timing lives in headers and /metrics), so identical
//     requests always produce identical bytes — the property the
//     httptest suite pins with j=1 versus j=8 workers.
//
// cmd/smserve wires this package to flags, an *http.Server, and
// SIGTERM-graceful draining.
package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/harness"
	"repro/internal/machine"
	"repro/internal/parallel"
	"repro/internal/probe"
	"repro/internal/sched"
	"repro/internal/sm"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Options configures a Server. The zero value selects the defaults
// noted on each field.
type Options struct {
	// InFlight bounds concurrently simulating requests (gate slots);
	// default 2. Total simulation goroutines are bounded by InFlight
	// times the parallel.SetWorkers budget batch items fan out under.
	InFlight int
	// Queue bounds requests waiting behind the slots; beyond it the
	// service answers 429. 0 takes the default of 64; negative means no
	// queue at all (reject the moment the slots are busy).
	Queue int
	// CacheEntries bounds the result LRU. Default 256.
	CacheEntries int
	// DefaultTimeout is the per-request simulation deadline when the
	// request does not set timeout_ms. Default 60s.
	DefaultTimeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.InFlight < 1 {
		o.InFlight = 2
	}
	if o.Queue == 0 {
		o.Queue = 64
	}
	if o.Queue < 0 {
		o.Queue = 0
	}
	if o.CacheEntries < 1 {
		o.CacheEntries = 256
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 60 * time.Second
	}
	return o
}

// Server is the simulation service. Create one with New and mount
// Handler on an *http.Server; Server is safe for concurrent use.
type Server struct {
	opts    Options
	gate    *parallel.Gate
	cache   *resultCache
	metrics metrics

	// runners memoizes one core.Runner per distinct (timing, energy)
	// parameter set so baseline calibrations are shared across requests
	// to the same machine. Bounded like the trace cache: flushed
	// entirely when it grows past runnerCacheCap (results never depend
	// on Runner reuse, only on the spec).
	runnersMu sync.Mutex
	runners   map[string]*core.Runner

	// flight coalesces concurrent identical requests onto one
	// computation.
	flightMu sync.Mutex
	flight   map[string]*flightCall

	mux *http.ServeMux
}

// runnerCacheCap bounds the memoized Runner map.
const runnerCacheCap = 64

type flightCall struct {
	done   chan struct{}
	status int
	body   []byte
}

// New returns a Server with the given options.
func New(opts Options) *Server {
	s := &Server{
		opts:    opts.withDefaults(),
		runners: make(map[string]*core.Runner),
		flight:  make(map[string]*flightCall),
	}
	s.gate = parallel.NewGate(s.opts.InFlight, s.opts.Queue)
	s.cache = newResultCache(s.opts.CacheEntries)
	s.metrics.start = time.Now()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/kernels", s.handleKernels)
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("POST /v1/experiment", s.handleExperiment)
	s.mux = mux
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// RunRequest describes one kernel simulation. Exactly the smsim surface:
// a registry kernel, a machine description (zero-valued fields take the
// paper's defaults), and optional overrides.
type RunRequest struct {
	// Kernel is the benchmark name (GET /v1/kernels lists them).
	Kernel string `json:"kernel"`
	// BF selects a needle blocking-factor variant; 0 is the kernel's
	// default. Ignored by kernels without a blocking factor.
	BF int `json:"bf,omitempty"`
	// Machine is the machine description, as in a -machine JSON file.
	Machine machine.Description `json:"machine,omitempty"`
	// AllocTotalKB, when positive, replaces the machine's design and
	// capacities with the §4.5 automatic allocation of a unified memory
	// of this many KB (the machine's max_threads caps residency).
	AllocTotalKB int `json:"alloc_total_kb,omitempty"`
	// RegsPerThread overrides the per-thread register allocation; 0 (or
	// anything at or above the kernel's demand) is the spill-free value.
	RegsPerThread int `json:"regs_per_thread,omitempty"`
	// Seed perturbs per-warp random streams; 0 means the default seed.
	Seed uint64 `json:"seed,omitempty"`
	// Probe attaches the cycle-level observability probe and returns
	// its byte-deterministic NDJSON profile in the response.
	Probe bool `json:"probe,omitempty"`
	// ProbeIntervalCycles is the probe sampling interval (0 = default).
	ProbeIntervalCycles int64 `json:"probe_interval_cycles,omitempty"`
	// TimeoutMS bounds the simulation's wall time (0 = server default).
	// Not part of the cache key: it bounds work, never results.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// ConfigInfo is the resolved local-memory configuration of a response.
type ConfigInfo struct {
	Design      string `json:"design"`
	RFBytes     int    `json:"rf_bytes"`
	SharedBytes int    `json:"shared_bytes"`
	CacheBytes  int    `json:"cache_bytes"`
	MaxThreads  int    `json:"max_threads"`
}

// OccupancyInfo is the residency a configuration admitted.
type OccupancyInfo struct {
	CTAs    int    `json:"ctas"`
	Threads int    `json:"threads"`
	Warps   int    `json:"warps"`
	Limiter string `json:"limiter"`
}

// EnergyInfo is the Section 5.2 energy breakdown in joules.
type EnergyInfo struct {
	MRF    float64 `json:"mrf"`
	ORF    float64 `json:"orf"`
	LRF    float64 `json:"lrf"`
	Shared float64 `json:"shared"`
	Cache  float64 `json:"cache"`
	Tags   float64 `json:"tags"`
	Other  float64 `json:"other"`
	Leak   float64 `json:"leak"`
	DRAM   float64 `json:"dram"`
	Total  float64 `json:"total"`
}

// RunResponse is the structured result of one simulation — the same
// numbers cmd/smsim prints, as JSON. Bodies are deterministic: two
// identical requests yield byte-identical responses whether simulated
// or served from cache.
type RunResponse struct {
	// Key is the canonical cache key of the request.
	Key string `json:"key"`
	// Kernel and BF echo the resolved workload.
	Kernel string `json:"kernel"`
	BF     int    `json:"bf,omitempty"`
	// Config is the resolved configuration the run executed under.
	Config ConfigInfo `json:"config"`
	// Occupancy is the admitted residency.
	Occupancy OccupancyInfo `json:"occupancy"`
	// Counters are the raw simulation event counts (stats.Counters).
	Counters *stats.Counters `json:"counters"`
	// IPC is thread instructions per cycle; WarpIPC the warp-granular
	// variant. Both are absolute metrics (see internal/core's package
	// comment on absolute versus ratio-only metrics).
	IPC     float64 `json:"ipc"`
	WarpIPC float64 `json:"warp_ipc"`
	// Energy is the energy breakdown in joules.
	Energy EnergyInfo `json:"energy"`
	// ProbeNDJSON is the probe profile when the request asked for one.
	ProbeNDJSON string `json:"probe_ndjson,omitempty"`
	// WarmCycles reports that the run was forked from a shared warm
	// prefix at this cycle (batch warm_cycles; see BatchRequest).
	WarmCycles int64 `json:"warm_cycles,omitempty"`
}

// BatchRequest is a set of independent runs executed as one admitted
// request, fanned out through the parallel engine.
type BatchRequest struct {
	Runs []RunRequest `json:"runs"`
	// WarmCycles, when positive, switches the batch to warm-prefix
	// sharing: items whose canonical requests agree on every
	// prefix-defining field (kernel, configuration, registers, seed,
	// scheduler policy and active-set size, scatter variant) share ONE
	// simulation warmed to this cycle under the default divergable
	// timing, copy-on-write forked per item (internal/snapshot). The
	// semantics are "switch timing parameters at cycle WarmCycles", so
	// results differ from cycle-0 runs and are cached under keys that
	// include the warm cycle. Probed items always take the exact
	// cycle-0 path (probes observe from the first cycle).
	WarmCycles int64 `json:"warm_cycles,omitempty"`
}

// BatchItem is one batch entry's outcome: exactly one of Result or
// Error is set. Items keep request order.
type BatchItem struct {
	Result *RunResponse `json:"result,omitempty"`
	// Error is the item's failure (e.g. an infeasible configuration);
	// Status is its HTTP-equivalent status code.
	Error  string `json:"error,omitempty"`
	Status int    `json:"status,omitempty"`
}

// BatchResponse is the ordered outcomes of a batch.
type BatchResponse struct {
	Results []json.RawMessage `json:"results"`
}

// ExperimentRequest names a paper experiment to regenerate (the
// cmd/paper surface; GET /metrics does not list names — see
// harness.Experiments or README).
type ExperimentRequest struct {
	// Name is the experiment ("table1" ... "figure11", "validation",
	// "ablation").
	Name string `json:"name"`
	// Scheduler optionally re-renders under a non-default warp
	// scheduler ("twolevel" or "gto").
	Scheduler string `json:"scheduler,omitempty"`
}

// ExperimentResponse carries one experiment's rendered table in the
// three formats the CLIs print.
type ExperimentResponse struct {
	Name      string `json:"name"`
	Scheduler string `json:"scheduler"`
	Text      string `json:"text"`
	CSV       string `json:"csv"`
	Markdown  string `json:"markdown"`
}

// KernelInfo is one registry benchmark.
type KernelInfo struct {
	Name              string `json:"name"`
	Suite             string `json:"suite"`
	Category          string `json:"category"`
	Description       string `json:"description"`
	RegsNeeded        int    `json:"regs_needed"`
	ThreadsPerCTA     int    `json:"threads_per_cta"`
	SharedBytesPerCTA int    `json:"shared_bytes_per_cta"`
	GridCTAs          int    `json:"grid_ctas"`
	BF                int    `json:"bf,omitempty"`
}

// errorBody is the JSON error envelope of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}

// resolvedRun is a RunRequest after canonicalization: the concrete
// kernel, configuration, and parameters, plus the cache key they hash
// to and the runner key the (timing, energy) half hashes to.
type resolvedRun struct {
	kernel    *workloads.Kernel
	cfg       config.MemConfig
	params    sm.Params
	eparams   energy.Params
	canon     machine.Description
	regs      int
	seed      uint64
	probe     bool
	probeIvl  int64
	timeout   time.Duration
	key       string
	runnerKey string
	// warm, when non-nil, routes the run through the shared warm prefix
	// (batch warm_cycles): the group's Warm is computed once and the run
	// copy-on-write forks it under its own divergable timing.
	warm       *warmEntry
	warmCycles int64
}

// warmEntry computes one prefix-defining group's warm prefix exactly
// once per batch. The prefix simulates under the group's prefix-defining
// parameters with default divergable timing, so a group's Warm — and
// therefore every forked result — is independent of which batch items
// formed the group.
type warmEntry struct {
	once   sync.Once
	seed   *resolvedRun // first group member; prefix-defining fields only
	cycles int64
	warm   *core.Warm
	err    error
}

// warmPrefix returns (computing once) the group's warm prefix. It runs
// without the item's context: the result is shared by every group
// member — and by later batches via the per-item cache — so it must
// never memoize one caller's cancellation. The server default timeout
// bounds the work instead.
func (e *warmEntry) warmPrefix(timeout time.Duration) (*core.Warm, error) {
	e.once.Do(func() {
		params := sm.DefaultParams()
		params.Scheduler = e.seed.params.Scheduler
		params.ActiveWarps = e.seed.params.ActiveWarps
		params.GreedyScheduler = e.seed.params.GreedyScheduler
		params.AggressiveScatter = e.seed.params.AggressiveScatter
		r := core.NewRunner()
		r.Params = params
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		defer cancel()
		e.warm, e.err = r.Warm(ctx, core.RunSpec{
			Kernel:        e.seed.kernel,
			Config:        e.seed.cfg,
			RegsPerThread: e.seed.regs,
			Seed:          e.seed.seed,
		}, e.cycles)
	})
	return e.warm, e.err
}

// canonicalWarmGroup hashes the prefix-defining half of a resolved run:
// requests that agree on these fields share one warm prefix.
type canonicalWarmGroup struct {
	Kernel      string `json:"kernel"`
	BF          int    `json:"bf"`
	Design      string `json:"design"`
	RFKB        int    `json:"rf_kb"`
	SharedKB    int    `json:"shared_kb"`
	CacheKB     int    `json:"cache_kb"`
	MaxThreads  int    `json:"max_threads"`
	Regs        int    `json:"regs"`
	Seed        uint64 `json:"seed"`
	Scheduler   string `json:"scheduler"`
	ActiveWarps int    `json:"active_warps"`
	Greedy      bool   `json:"greedy"`
	Scatter     bool   `json:"scatter"`
	Cycles      int64  `json:"cycles"`
}

// warmGroupKey derives the prefix-defining group key for warm sharing.
func warmGroupKey(rr *resolvedRun, cycles int64) string {
	b, _ := json.Marshal(canonicalWarmGroup{
		Kernel:      rr.kernel.Name,
		BF:          rr.kernel.BF,
		Design:      rr.canon.Design,
		RFKB:        rr.canon.RFKB,
		SharedKB:    rr.canon.SharedKB,
		CacheKB:     rr.canon.CacheKB,
		MaxThreads:  rr.canon.MaxThreads,
		Regs:        rr.regs,
		Seed:        rr.seed,
		Scheduler:   string(rr.params.Scheduler),
		ActiveWarps: rr.params.ActiveWarps,
		Greedy:      rr.params.GreedyScheduler,
		Scatter:     rr.params.AggressiveScatter,
		Cycles:      cycles,
	})
	return string(b)
}

// canonicalRun is the hashed form of a resolved run. Field order is the
// serialization order, so changing this struct changes every key.
type canonicalRun struct {
	Kernel   string              `json:"kernel"`
	BF       int                 `json:"bf"`
	Machine  machine.Description `json:"machine"`
	Regs     int                 `json:"regs"`
	Seed     uint64              `json:"seed"`
	Probe    bool                `json:"probe"`
	ProbeIvl int64               `json:"probe_interval,omitempty"`
}

// resolve canonicalizes one request. Errors are client errors (400/404).
func (s *Server) resolve(req RunRequest) (*resolvedRun, error) {
	if req.Kernel == "" {
		return nil, fmt.Errorf("missing \"kernel\" (GET /v1/kernels lists the registry)")
	}
	var k *workloads.Kernel
	var err error
	if req.Kernel == "needle" && req.BF != 0 {
		k = workloads.NeedleKernel(req.BF)
	} else {
		k, err = workloads.ByName(req.Kernel)
		if err != nil {
			return nil, err
		}
	}
	cfg, params, eparams, err := req.Machine.Resolve()
	if err != nil {
		return nil, err
	}
	if req.AllocTotalKB > 0 {
		cfg, err = config.Allocate(k.Requirements(), req.AllocTotalKB<<10, req.Machine.MaxThreads)
		if err != nil {
			return nil, err
		}
	}
	rr := &resolvedRun{
		kernel:  k,
		cfg:     cfg,
		params:  params,
		eparams: eparams,
		canon:   machine.Describe(cfg, params, eparams),
		regs:    req.RegsPerThread,
		seed:    req.Seed,
	}
	// Canonicalize exactly the clamps the simulator applies, so
	// requests that spell the same run differently share a key.
	if rr.regs <= 0 || rr.regs > k.RegsNeeded {
		rr.regs = k.RegsNeeded
	}
	if rr.seed == 0 {
		rr.seed = 1 // core.Runner's default seed
	}
	if req.Probe {
		rr.probe = true
		rr.probeIvl = req.ProbeIntervalCycles
		if rr.probeIvl <= 0 {
			rr.probeIvl = probe.DefaultInterval
		}
	}
	rr.timeout = s.opts.DefaultTimeout
	if req.TimeoutMS > 0 {
		rr.timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	ck, err := json.Marshal(canonicalRun{
		Kernel:   k.Name,
		BF:       k.BF,
		Machine:  rr.canon,
		Regs:     rr.regs,
		Seed:     rr.seed,
		Probe:    rr.probe,
		ProbeIvl: rr.probeIvl,
	})
	if err != nil {
		return nil, err
	}
	rr.key = cacheKey(ck)
	// The runner depends only on the (timing, energy) half of the
	// machine; zero the configuration half so runs under different
	// capacities share one Runner and its baseline calibrations.
	rk := rr.canon
	rk.Design, rk.RFKB, rk.SharedKB, rk.CacheKB, rk.MaxThreads = "", 0, 0, 0, 0
	rkb, err := json.Marshal(rk)
	if err != nil {
		return nil, err
	}
	rr.runnerKey = string(rkb)
	return rr, nil
}

// runner returns (memoizing) the Runner for a resolved run's timing and
// energy parameters.
func (s *Server) runner(rr *resolvedRun) *core.Runner {
	s.runnersMu.Lock()
	defer s.runnersMu.Unlock()
	if r, ok := s.runners[rr.runnerKey]; ok {
		return r
	}
	if len(s.runners) >= runnerCacheCap {
		s.runners = make(map[string]*core.Runner, runnerCacheCap)
	}
	r := core.NewRunner()
	r.Params = rr.params
	r.Energy.P = rr.eparams
	s.runners[rr.runnerKey] = r
	return r
}

// simulate executes one resolved run and marshals its response body.
func (s *Server) simulate(ctx context.Context, rr *resolvedRun) (int, []byte) {
	ctx, cancel := context.WithTimeout(ctx, rr.timeout)
	defer cancel()
	var (
		opts    []core.RunOption
		ndjson  bytes.Buffer
		started = time.Now()
	)
	if rr.probe {
		opts = append(opts, core.WithProbe(probe.New(rr.probeIvl, &ndjson)))
	}
	var res *core.Result
	var err error
	if rr.warm != nil {
		// Warm-prefix path: fork the group's shared prefix under this
		// item's divergable timing. Energy calibration comes from the
		// item's own runner, exactly as the direct path.
		var warm *core.Warm
		if warm, err = rr.warm.warmPrefix(s.opts.DefaultTimeout); err == nil {
			res, err = warm.Resume(ctx, s.runner(rr), rr.params)
		}
	} else {
		res, err = s.runner(rr).RunCtx(ctx, core.RunSpec{
			Kernel:        rr.kernel,
			Config:        rr.cfg,
			RegsPerThread: rr.regs,
			Seed:          rr.seed,
		}, opts...)
	}
	s.metrics.simRuns.Add(1)
	s.metrics.simSeconds.observe(time.Since(started).Seconds())
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.metrics.timeouts.Add(1)
		return http.StatusGatewayTimeout, marshalBody(errorBody{Error: fmt.Sprintf(
			"simulation exceeded its %v deadline (raise timeout_ms or the server -timeout)", rr.timeout)})
	case errors.Is(err, context.Canceled):
		// The client went away; 499 in nginx's vocabulary, nothing
		// useful to send. StatusRequestTimeout keeps it a client error.
		return http.StatusRequestTimeout, marshalBody(errorBody{Error: "request cancelled"})
	case core.IsInfeasible(err):
		s.metrics.clientErrors.Add(1)
		return http.StatusUnprocessableEntity, marshalBody(errorBody{Error: err.Error()})
	case err != nil:
		s.metrics.serverErrors.Add(1)
		return http.StatusInternalServerError, marshalBody(errorBody{Error: err.Error()})
	}
	resp := RunResponse{
		Key:    rr.key,
		Kernel: rr.kernel.Name,
		Config: ConfigInfo{
			Design:      rr.cfg.Design.String(),
			RFBytes:     rr.cfg.RFBytes,
			SharedBytes: rr.cfg.SharedBytes,
			CacheBytes:  rr.cfg.CacheBytes,
			MaxThreads:  rr.cfg.MaxThreads,
		},
		Occupancy: OccupancyInfo{
			CTAs:    res.Occupancy.CTAs,
			Threads: res.Occupancy.Threads,
			Warps:   res.Occupancy.Warps,
			Limiter: res.Occupancy.Limiter.String(),
		},
		Counters: res.Counters,
		IPC:      res.IPC(),
		WarpIPC:  res.Counters.IPC(),
		Energy: EnergyInfo{
			MRF: res.Energy.MRF, ORF: res.Energy.ORF, LRF: res.Energy.LRF,
			Shared: res.Energy.Shared, Cache: res.Energy.Cache, Tags: res.Energy.Tags,
			Other: res.Energy.Other, Leak: res.Energy.Leak, DRAM: res.Energy.DRAM,
			Total: res.Energy.Total(),
		},
		ProbeNDJSON: ndjson.String(),
		WarmCycles:  rr.warmCycles,
	}
	if rr.kernel.Name == "needle" {
		resp.BF = rr.kernel.BF
	}
	return http.StatusOK, marshalBody(resp)
}

// compute runs the cache -> coalesce -> simulate pipeline for one
// resolved run. It assumes admission (the gate) is already settled.
// counted says the caller already recorded this lookup in the cache
// stats (handleRun's pre-admission check), so the recheck stays quiet.
// The cacheState return is "hit", "coalesced", or "miss".
func (s *Server) compute(ctx context.Context, rr *resolvedRun, counted bool) (status int, body []byte, cacheState string) {
	lookup := s.cache.get
	if counted {
		lookup = s.cache.peek
	}
	if body, ok := lookup(rr.key); ok {
		return http.StatusOK, body, "hit"
	}
	s.flightMu.Lock()
	if c, ok := s.flight[rr.key]; ok {
		s.flightMu.Unlock()
		select {
		case <-c.done:
			s.metrics.coalesced.Add(1)
			return c.status, c.body, "coalesced"
		case <-ctx.Done():
			return http.StatusRequestTimeout, marshalBody(errorBody{Error: "request cancelled"}), "miss"
		}
	}
	c := &flightCall{done: make(chan struct{})}
	s.flight[rr.key] = c
	s.flightMu.Unlock()

	c.status, c.body = s.simulate(ctx, rr)
	if c.status == http.StatusOK {
		s.cache.put(rr.key, c.body)
	}
	s.flightMu.Lock()
	delete(s.flight, rr.key)
	s.flightMu.Unlock()
	close(c.done)
	return c.status, c.body, "miss"
}

// admit claims a gate slot for the request, translating backpressure
// into 429 + Retry-After. The returned release func is nil when
// admission failed.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) func() {
	err := s.gate.Acquire(r.Context())
	switch {
	case errors.Is(err, parallel.ErrQueueFull):
		s.metrics.rejected.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(1+s.gate.Waiting()))
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: fmt.Sprintf(
			"admission queue full (%d in flight, %d waiting); retry later",
			s.gate.InFlight(), s.gate.Waiting())})
		return nil
	case err != nil:
		writeJSON(w, http.StatusRequestTimeout, errorBody{Error: "request cancelled while queued"})
		return nil
	}
	return s.gate.Release
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	s.metrics.runRequests.Add(1)
	var req RunRequest
	if !decodeStrict(w, r, &req, &s.metrics) {
		return
	}
	rr, err := s.resolve(req)
	if err != nil {
		s.metrics.clientErrors.Add(1)
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	// A cache hit skips admission entirely: replaying bytes is free.
	if body, ok := s.cache.get(rr.key); ok {
		writeBody(w, http.StatusOK, body, "hit")
		return
	}
	release := s.admit(w, r)
	if release == nil {
		return
	}
	defer release()
	status, body, state := s.compute(r.Context(), rr, true)
	writeBody(w, status, body, state)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.metrics.batchRequests.Add(1)
	var req BatchRequest
	if !decodeStrict(w, r, &req, &s.metrics) {
		return
	}
	if len(req.Runs) == 0 {
		s.metrics.clientErrors.Add(1)
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "empty batch: \"runs\" must list at least one run"})
		return
	}
	if req.WarmCycles < 0 {
		s.metrics.clientErrors.Add(1)
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "warm_cycles must be non-negative"})
		return
	}
	resolved := make([]*resolvedRun, len(req.Runs))
	groups := make(map[string]*warmEntry)
	for i, run := range req.Runs {
		rr, err := s.resolve(run)
		if err != nil {
			s.metrics.clientErrors.Add(1)
			writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("runs[%d]: %v", i, err)})
			return
		}
		// Warm-prefix sharing: group prefix-compatible unprobed items.
		// Fork-at-K results differ from cycle-0 results, so the cache
		// key grows a warm suffix; probed items keep the exact path and
		// their plain key.
		if req.WarmCycles > 0 && !rr.probe {
			gk := warmGroupKey(rr, req.WarmCycles)
			e := groups[gk]
			if e == nil {
				e = &warmEntry{seed: rr, cycles: req.WarmCycles}
				groups[gk] = e
			}
			rr.warm = e
			rr.warmCycles = req.WarmCycles
			rr.key = cacheKey([]byte(rr.key + "\x00warm\x00" + strconv.FormatInt(req.WarmCycles, 10)))
		}
		resolved[i] = rr
	}
	release := s.admit(w, r)
	if release == nil {
		return
	}
	defer release()
	hits, misses := 0, 0
	var mu sync.Mutex
	// Items fan out across the process worker budget; Map keeps results
	// in request order, so the assembled body is worker-count invariant.
	items, _ := parallel.Map(len(resolved), func(i int) (json.RawMessage, error) {
		status, body, state := s.compute(r.Context(), resolved[i], false)
		mu.Lock()
		if state == "miss" {
			misses++
		} else {
			hits++
		}
		mu.Unlock()
		if status == http.StatusOK {
			return json.RawMessage(marshalBody(BatchItem{Result: rawResponse(body)})), nil
		}
		var e errorBody
		_ = json.Unmarshal(body, &e)
		return json.RawMessage(marshalBody(BatchItem{Error: e.Error, Status: status})), nil
	})
	body := marshalBody(BatchResponse{Results: items})
	writeBody(w, http.StatusOK, body, fmt.Sprintf("hits=%d misses=%d", hits, misses))
}

// rawResponse re-decodes a cached body into a RunResponse pointer for
// embedding in a batch item. The round trip is deterministic: the body
// was produced by marshalBody and re-marshals to the same bytes.
func rawResponse(body []byte) *RunResponse {
	var resp RunResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		return nil
	}
	return &resp
}

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	s.metrics.experimentRequests.Add(1)
	var req ExperimentRequest
	if !decodeStrict(w, r, &req, &s.metrics) {
		return
	}
	pol, err := sched.ParsePolicy(req.Scheduler)
	if err != nil {
		s.metrics.clientErrors.Add(1)
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	known := false
	for _, name := range harness.Experiments {
		if name == req.Name {
			known = true
			break
		}
	}
	if !known {
		s.metrics.clientErrors.Add(1)
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf(
			"unknown experiment %q (have %v)", req.Name, harness.Experiments)})
		return
	}
	key := "experiment\x00" + req.Name + "\x00" + string(pol)
	if body, ok := s.cache.get(key); ok {
		writeBody(w, http.StatusOK, body, "hit")
		return
	}
	release := s.admit(w, r)
	if release == nil {
		return
	}
	defer release()
	// Experiments reuse the run path's Runner memoization keyed by the
	// default machine with the chosen scheduler.
	d := machine.Default()
	d.Timing.Scheduler = string(pol)
	rr, err := s.resolve(RunRequest{Kernel: "needle", Machine: d})
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	rr.key = key
	s.flightMu.Lock()
	if c, ok := s.flight[key]; ok {
		s.flightMu.Unlock()
		<-c.done
		s.metrics.coalesced.Add(1)
		writeBody(w, c.status, c.body, "coalesced")
		return
	}
	c := &flightCall{done: make(chan struct{})}
	s.flight[key] = c
	s.flightMu.Unlock()
	started := time.Now()
	t, err := harness.Run(s.runner(rr), req.Name)
	s.metrics.simSeconds.observe(time.Since(started).Seconds())
	if err != nil {
		s.metrics.serverErrors.Add(1)
		c.status, c.body = http.StatusInternalServerError, marshalBody(errorBody{Error: err.Error()})
	} else {
		s.metrics.simRuns.Add(1)
		c.status, c.body = http.StatusOK, marshalBody(ExperimentResponse{
			Name:      req.Name,
			Scheduler: string(pol),
			Text:      t.String(),
			CSV:       t.CSV(),
			Markdown:  t.Markdown(),
		})
		s.cache.put(key, c.body)
	}
	s.flightMu.Lock()
	delete(s.flight, key)
	s.flightMu.Unlock()
	close(c.done)
	writeBody(w, c.status, c.body, "miss")
}

func (s *Server) handleKernels(w http.ResponseWriter, _ *http.Request) {
	var out []KernelInfo
	for _, k := range workloads.All() {
		out = append(out, KernelInfo{
			Name:              k.Name,
			Suite:             k.Suite,
			Category:          k.Category.String(),
			Description:       k.Description,
			RegsNeeded:        k.RegsNeeded,
			ThreadsPerCTA:     k.ThreadsPerCTA,
			SharedBytesPerCTA: k.SharedBytesPerCTA,
			GridCTAs:          k.GridCTAs,
			BF:                k.BF,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	hits, misses, entries, bytes := s.cache.stats()
	snap := Snapshot{
		UptimeSeconds:      time.Since(s.metrics.start).Seconds(),
		RunRequests:        s.metrics.runRequests.Load(),
		BatchRequests:      s.metrics.batchRequests.Load(),
		ExperimentRequests: s.metrics.experimentRequests.Load(),
		Rejected:           s.metrics.rejected.Load(),
		ClientErrors:       s.metrics.clientErrors.Load(),
		ServerErrors:       s.metrics.serverErrors.Load(),
		Timeouts:           s.metrics.timeouts.Load(),
		CacheHits:          hits,
		CacheMisses:        misses,
		CacheEntries:       entries,
		CacheBytes:         bytes,
		Coalesced:          s.metrics.coalesced.Load(),
		QueueDepth:         s.gate.Waiting(),
		InFlight:           s.gate.InFlight(),
		Workers:            s.gate.Capacity(),
		SimRuns:            s.metrics.simRuns.Load(),
		SimSeconds:         s.metrics.simSeconds.snapshot(),
		TraceCache:         workloads.TraceCacheSnapshot(),
	}
	if total := hits + misses; total > 0 {
		snap.CacheHitRatio = float64(hits) / float64(total)
	}
	snap.TraceCacheHitRatio = snap.TraceCache.HitRatio()
	writeJSON(w, http.StatusOK, snap)
}

// decodeStrict decodes a JSON request body, rejecting unknown fields so
// misspelled parameters fail loudly instead of silently simulating the
// wrong thing.
func decodeStrict(w http.ResponseWriter, r *http.Request, v any, m *metrics) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		m.clientErrors.Add(1)
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return false
	}
	return true
}

// marshalBody marshals a response body deterministically (compact JSON
// plus a trailing newline). Marshal errors cannot occur for the
// response types in this package.
func marshalBody(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		b, _ = json.Marshal(errorBody{Error: "internal: marshal: " + err.Error()})
	}
	return append(b, '\n')
}

// writeBody writes a prepared body with the cache-state header.
func writeBody(w http.ResponseWriter, status int, body []byte, cacheState string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", cacheState)
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// writeJSON marshals and writes an ad-hoc (uncached) response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(marshalBody(v))
}

// cacheKey hashes canonical request bytes into the LRU key.
func cacheKey(canonical []byte) string {
	sum := sha256.Sum256(canonical)
	return hex.EncodeToString(sum[:])
}
