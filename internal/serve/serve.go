// Package serve is the simulation service: a long-running HTTP/JSON
// front end that turns the one-shot CLI workflow (smsim, paper, sweep)
// into a shared, amortized process — the repository's
// inference-serving-shaped component: batching, caching, durable async
// jobs, backpressure, and determinism under concurrency.
//
// The public surface — every request/response DTO, the error envelope,
// and a thin client — lives in the api package; this package is the
// implementation. Endpoints (all bodies JSON):
//
//	POST   /v1/run              one kernel simulation       -> api.RunResponse
//	POST   /v1/batch            many simulations, fanned out-> api.BatchResponse
//	POST   /v1/experiment       a named paper experiment    -> api.ExperimentResponse
//	POST   /v1/jobs             submit an async job (202)   -> api.Job
//	GET    /v1/jobs             list jobs                   -> []api.Job
//	GET    /v1/jobs/{id}        poll status and progress    -> api.Job
//	GET    /v1/jobs/{id}/events live progress stream           (SSE)
//	GET    /v1/jobs/{id}/result final result bytes
//	DELETE /v1/jobs/{id}        cancel                      -> api.Job
//	GET    /v1/kernels          the benchmark registry      -> []api.KernelInfo
//	GET    /healthz             liveness
//	GET    /metrics             counters and histograms     -> api.Snapshot
//
// Four properties define the service:
//
//   - Canonical result caching. Every run request is canonicalized —
//     machine JSON resolved and re-rendered with defaults filled and
//     aliases collapsed (machine.Describe), kernel and register budget
//     clamped the way the simulator clamps them — and hashed into a
//     deterministic SHA-256 key. Completed response bodies are memoized
//     in a bounded LRU keyed by that hash, layered over the process-wide
//     trace cache (internal/workloads), so a repeated request is served
//     from memory with a byte-identical body. Identical requests in
//     flight at the same time are coalesced: one simulates, the rest
//     wait for its bytes. The X-Cache header says which path answered:
//     hit, stored, coalesced, or miss.
//
//   - Durable results. With Options.DataDir set, the same canonical key
//     addresses a persistent content-addressed store (internal/store)
//     underneath the LRU: completed bodies are written once, replayed
//     across restarts, and shared by the sync endpoints and the job
//     engine alike. This is what makes jobs resumable — a restarted
//     server re-enters persisted jobs (internal/jobs) and their already
//     completed items are answered from the store instead of
//     re-simulated.
//
//   - Bounded admission. A parallel.Gate bounds how many synchronous
//     requests simulate concurrently, with a bounded wait queue behind
//     the slots; beyond that the service answers 429 with a Retry-After
//     header and a retry_after_s hint in the envelope instead of
//     queueing without bound. Async jobs run under their own gate
//     (Options.JobSlots) so a long sweep job cannot starve interactive
//     requests of queue slots. Batch and job items fan out through
//     parallel.Map under the process worker budget (parallel.SetWorkers),
//     which keeps assembled bodies byte-identical for every worker
//     count. Per-request deadlines flow through core.RunCtx into the
//     simulator's cycle loop; an exceeded deadline answers 504.
//
//   - Deterministic bodies and errors. The simulator is deterministic,
//     responses are marshaled once and replayed as raw bytes, and
//     nothing time- or order-dependent is ever written into a response
//     body (timing lives in headers and /metrics), so identical
//     requests always produce identical bytes — including a job's
//     final result versus the equivalent synchronous call. Every
//     non-2xx response is the one envelope shape api.ErrorBody with a
//     stable machine-readable code.
//
// cmd/smserve wires this package to flags, an *http.Server, and
// SIGTERM-graceful draining.
package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/api"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/harness"
	"repro/internal/jobs"
	"repro/internal/machine"
	"repro/internal/parallel"
	"repro/internal/probe"
	"repro/internal/sched"
	"repro/internal/sm"
	"repro/internal/store"
	"repro/internal/workloads"
)

// Options configures a Server. The zero value selects the defaults
// noted on each field.
type Options struct {
	// InFlight bounds concurrently simulating synchronous requests (gate
	// slots); default 2. Total simulation goroutines are bounded by
	// InFlight times the parallel.SetWorkers budget batch items fan out
	// under.
	InFlight int
	// Queue bounds requests waiting behind the slots; beyond it the
	// service answers 429. 0 takes the default of 64; negative means no
	// queue at all (reject the moment the slots are busy).
	Queue int
	// CacheEntries bounds the result LRU. Default 256.
	CacheEntries int
	// DefaultTimeout is the per-request simulation deadline when the
	// request does not set timeout_ms. Default 60s.
	DefaultTimeout time.Duration
	// DataDir enables persistence: completed result bodies under
	// <DataDir>/results (content-addressed by canonical key) and job
	// records under <DataDir>/jobs. Empty runs fully in-memory — jobs
	// still work but die with the process.
	DataDir string
	// JobSlots bounds concurrently executing async jobs (default 2);
	// JobQueue bounds jobs waiting behind them (default 1024). Jobs
	// admit through their own gate, not the synchronous one.
	JobSlots int
	JobQueue int

	// execWrap, when set, wraps the job engine's item executor — a test
	// hook (package-internal) for deterministic kill/restart tests.
	execWrap func(jobs.Exec) jobs.Exec
}

func (o Options) withDefaults() Options {
	if o.InFlight < 1 {
		o.InFlight = 2
	}
	if o.Queue == 0 {
		o.Queue = 64
	}
	if o.Queue < 0 {
		o.Queue = 0
	}
	if o.CacheEntries < 1 {
		o.CacheEntries = 256
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 60 * time.Second
	}
	return o
}

// Server is the simulation service. Create one with New, mount Handler
// on an *http.Server, and Close it on shutdown; Server is safe for
// concurrent use.
type Server struct {
	opts    Options
	gate    *parallel.Gate
	cache   *resultCache
	store   *store.Store // nil without DataDir
	engine  *jobs.Engine
	metrics metrics

	// runners memoizes one core.Runner per distinct (timing, energy)
	// parameter set so baseline calibrations are shared across requests
	// to the same machine. Bounded like the trace cache: flushed
	// entirely when it grows past runnerCacheCap (results never depend
	// on Runner reuse, only on the spec).
	runnersMu sync.Mutex
	runners   map[string]*core.Runner

	// flight coalesces concurrent identical requests onto one
	// computation.
	flightMu sync.Mutex
	flight   map[string]*flightCall

	mux *http.ServeMux
}

// runnerCacheCap bounds the memoized Runner map.
const runnerCacheCap = 64

type flightCall struct {
	done   chan struct{}
	status int
	body   []byte
}

// New returns a Server with the given options. With Options.DataDir it
// opens (creating if needed) the persistent result store and job
// directory, and resumes any persisted unfinished jobs.
func New(opts Options) (*Server, error) {
	s := &Server{
		opts:    opts.withDefaults(),
		runners: make(map[string]*core.Runner),
		flight:  make(map[string]*flightCall),
	}
	s.gate = parallel.NewGate(s.opts.InFlight, s.opts.Queue)
	s.cache = newResultCache(s.opts.CacheEntries)
	s.metrics.start = time.Now()

	jobDir := ""
	if s.opts.DataDir != "" {
		st, err := store.Open(filepath.Join(s.opts.DataDir, "results"))
		if err != nil {
			return nil, fmt.Errorf("serve: opening result store: %w", err)
		}
		s.store = st
		jobDir = filepath.Join(s.opts.DataDir, "jobs")
	}
	exec := s.jobExec
	if s.opts.execWrap != nil {
		exec = s.opts.execWrap(exec)
	}
	engine, err := jobs.New(jobs.Options{
		Dir:     jobDir,
		Slots:   s.opts.JobSlots,
		Queue:   s.opts.JobQueue,
		Resolve: s.jobResolve,
		Exec:    exec,
	})
	if err != nil {
		return nil, fmt.Errorf("serve: starting job engine: %w", err)
	}
	s.engine = engine

	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/kernels", s.handleKernels)
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("POST /v1/experiment", s.handleExperiment)
	mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	s.mux = mux
	return s, nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops the job engine. Running jobs are abandoned exactly as a
// kill would abandon them — their persisted records stay unfinished and
// the next New on the same DataDir resumes them; completed items are
// not lost (they live in the result store).
func (s *Server) Close() {
	s.engine.Close()
}

// resolvedRun is an api.RunRequest after canonicalization: the concrete
// kernel, configuration, and parameters, plus the cache key they hash
// to and the runner key the (timing, energy) half hashes to.
type resolvedRun struct {
	kernel    *workloads.Kernel
	cfg       config.MemConfig
	params    sm.Params
	eparams   energy.Params
	canon     machine.Description
	regs      int
	seed      uint64
	probe     bool
	probeIvl  int64
	timeout   time.Duration
	key       string
	runnerKey string
	// streams holds the resolved co-resident kernels of a multi-tenant
	// request (api.RunRequest.Streams with two or more entries; a
	// single entry canonically collapses to the plain form, so kernel
	// is nil exactly when streams is set).
	streams []resolvedStream
	// warm, when non-nil, routes the run through the shared warm prefix
	// (batch warm_cycles): the group's Warm is computed once and the run
	// copy-on-write forks it under its own divergable timing.
	warm       *warmEntry
	warmCycles int64
	// probeSink, when non-nil, receives probe NDJSON bytes live while
	// the simulation runs (the job engine's probe event stream), in
	// addition to the response body.
	probeSink io.Writer
}

// warmEntry computes one prefix-defining group's warm prefix exactly
// once per batch. The prefix simulates under the group's prefix-defining
// parameters with default divergable timing, so a group's Warm — and
// therefore every forked result — is independent of which batch items
// formed the group.
type warmEntry struct {
	once   sync.Once
	seed   *resolvedRun // first group member; prefix-defining fields only
	cycles int64
	warm   *core.Warm
	err    error
}

// warmPrefix returns (computing once) the group's warm prefix. It runs
// without the item's context: the result is shared by every group
// member — and by later batches via the per-item cache — so it must
// never memoize one caller's cancellation. The server default timeout
// bounds the work instead.
func (e *warmEntry) warmPrefix(timeout time.Duration) (*core.Warm, error) {
	e.once.Do(func() {
		params := sm.DefaultParams()
		params.Scheduler = e.seed.params.Scheduler
		params.ActiveWarps = e.seed.params.ActiveWarps
		params.GreedyScheduler = e.seed.params.GreedyScheduler
		params.AggressiveScatter = e.seed.params.AggressiveScatter
		r := core.NewRunner()
		r.Params = params
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		defer cancel()
		e.warm, e.err = r.Warm(ctx, core.RunSpec{
			Kernel:        e.seed.kernel,
			Config:        e.seed.cfg,
			RegsPerThread: e.seed.regs,
			Seed:          e.seed.seed,
		}, e.cycles)
	})
	return e.warm, e.err
}

// canonicalWarmGroup hashes the prefix-defining half of a resolved run:
// requests that agree on these fields share one warm prefix.
type canonicalWarmGroup struct {
	Kernel      string `json:"kernel"`
	BF          int    `json:"bf"`
	Design      string `json:"design"`
	RFKB        int    `json:"rf_kb"`
	SharedKB    int    `json:"shared_kb"`
	CacheKB     int    `json:"cache_kb"`
	MaxThreads  int    `json:"max_threads"`
	Regs        int    `json:"regs"`
	Seed        uint64 `json:"seed"`
	Scheduler   string `json:"scheduler"`
	ActiveWarps int    `json:"active_warps"`
	Greedy      bool   `json:"greedy"`
	Scatter     bool   `json:"scatter"`
	Cycles      int64  `json:"cycles"`
}

// warmGroupKey derives the prefix-defining group key for warm sharing.
func warmGroupKey(rr *resolvedRun, cycles int64) string {
	b, _ := json.Marshal(canonicalWarmGroup{
		Kernel:      rr.kernel.Name,
		BF:          rr.kernel.BF,
		Design:      rr.canon.Design,
		RFKB:        rr.canon.RFKB,
		SharedKB:    rr.canon.SharedKB,
		CacheKB:     rr.canon.CacheKB,
		MaxThreads:  rr.canon.MaxThreads,
		Regs:        rr.regs,
		Seed:        rr.seed,
		Scheduler:   string(rr.params.Scheduler),
		ActiveWarps: rr.params.ActiveWarps,
		Greedy:      rr.params.GreedyScheduler,
		Scatter:     rr.params.AggressiveScatter,
		Cycles:      cycles,
	})
	return string(b)
}

// canonicalRun is the hashed form of a resolved run. Field order is the
// serialization order, so changing this struct changes every key.
// Streams trails with omitempty so every pre-existing single-kernel
// request keeps its exact key.
type canonicalRun struct {
	Kernel   string              `json:"kernel"`
	BF       int                 `json:"bf"`
	Machine  machine.Description `json:"machine"`
	Regs     int                 `json:"regs"`
	Seed     uint64              `json:"seed"`
	Probe    bool                `json:"probe"`
	ProbeIvl int64               `json:"probe_interval,omitempty"`
	Streams  []canonicalStream   `json:"streams,omitempty"`
}

// canonicalStream is the hashed form of one resolved stream: the
// concrete kernel and the clamps the simulator applies, so stream
// spellings of the same run share a key.
type canonicalStream struct {
	Kernel string `json:"kernel"`
	BF     int    `json:"bf"`
	Regs   int    `json:"regs"`
	Seed   uint64 `json:"seed"`
}

// resolvedStream is one canonicalized stream of a multi-tenant request.
type resolvedStream struct {
	kernel *workloads.Kernel
	regs   int
	seed   uint64
}

// label names the run for notes and error messages: the kernel name, or
// the "+"-joined stream names of a multi-tenant run.
func (rr *resolvedRun) label() string {
	if rr.kernel != nil {
		return rr.kernel.Name
	}
	names := make([]string, len(rr.streams))
	for i, st := range rr.streams {
		names[i] = st.kernel.Name
	}
	return strings.Join(names, "+")
}

// resolve canonicalizes one request. Errors are client errors (400).
func (s *Server) resolve(req api.RunRequest) (*resolvedRun, error) {
	if len(req.Streams) > 0 {
		if req.Kernel != "" || req.BF != 0 || req.RegsPerThread != 0 || req.Seed != 0 {
			return nil, fmt.Errorf("\"streams\" is mutually exclusive with kernel/bf/regs_per_thread/seed")
		}
		if len(req.Streams) == 1 {
			// Canonical collapse: a single-entry streams list IS the
			// plain request, so both spellings share one cache key.
			st := req.Streams[0]
			req.Kernel, req.BF, req.RegsPerThread, req.Seed = st.Kernel, st.BF, st.RegsPerThread, st.Seed
			req.Streams = nil
		} else {
			return s.resolveStreams(req)
		}
	}
	if req.Kernel == "" {
		return nil, fmt.Errorf("missing \"kernel\" (GET /v1/kernels lists the registry)")
	}
	var k *workloads.Kernel
	var err error
	if req.Kernel == "needle" && req.BF != 0 {
		k = workloads.NeedleKernel(req.BF)
	} else {
		k, err = workloads.ByName(req.Kernel)
		if err != nil {
			return nil, err
		}
	}
	cfg, params, eparams, err := req.Machine.Resolve()
	if err != nil {
		return nil, err
	}
	if req.AllocTotalKB > 0 && req.FermiTotalKB > 0 {
		return nil, fmt.Errorf("at most one of alloc_total_kb and fermi_total_kb")
	}
	if req.AllocTotalKB > 0 {
		cfg, err = config.Allocate(k.Requirements(), req.AllocTotalKB<<10, req.Machine.MaxThreads)
		if err != nil {
			return nil, err
		}
	}
	if req.FermiTotalKB > 0 {
		if req.FermiTotalKB<<10 <= config.BaselineRFBytes {
			return nil, fmt.Errorf("fermi_total_kb must exceed the fixed %dKB register file",
				config.BaselineRFBytes>>10)
		}
		cfg = config.ChooseFermi(k.Requirements(), req.FermiTotalKB<<10-config.BaselineRFBytes, req.Machine.MaxThreads)
	}
	rr := &resolvedRun{
		kernel:  k,
		cfg:     cfg,
		params:  params,
		eparams: eparams,
		canon:   machine.Describe(cfg, params, eparams),
		regs:    req.RegsPerThread,
		seed:    req.Seed,
	}
	// Canonicalize exactly the clamps the simulator applies, so
	// requests that spell the same run differently share a key.
	if rr.regs <= 0 || rr.regs > k.RegsNeeded {
		rr.regs = k.RegsNeeded
	}
	if rr.seed == 0 {
		rr.seed = 1 // core.Runner's default seed
	}
	if req.Probe {
		rr.probe = true
		rr.probeIvl = req.ProbeIntervalCycles
		if rr.probeIvl <= 0 {
			rr.probeIvl = probe.DefaultInterval
		}
	}
	rr.timeout = s.opts.DefaultTimeout
	if req.TimeoutMS > 0 {
		rr.timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	ck, err := json.Marshal(canonicalRun{
		Kernel:   k.Name,
		BF:       k.BF,
		Machine:  rr.canon,
		Regs:     rr.regs,
		Seed:     rr.seed,
		Probe:    rr.probe,
		ProbeIvl: rr.probeIvl,
	})
	if err != nil {
		return nil, err
	}
	rr.key = cacheKey(ck)
	// The runner depends only on the (timing, energy) half of the
	// machine; zero the configuration half so runs under different
	// capacities share one Runner and its baseline calibrations.
	rk := rr.canon
	rk.Design, rk.RFKB, rk.SharedKB, rk.CacheKB, rk.MaxThreads = "", 0, 0, 0, 0
	rkb, err := json.Marshal(rk)
	if err != nil {
		return nil, err
	}
	rr.runnerKey = string(rkb)
	return rr, nil
}

// resolveStreams canonicalizes a multi-tenant request (two or more
// streams): each stream's kernel, register clamp, and seed resolve
// exactly as the plain form's do, and alloc_total_kb/fermi_total_kb
// partition jointly for the whole mix (config.AllocateMulti /
// config.ChooseFermiMulti).
func (s *Server) resolveStreams(req api.RunRequest) (*resolvedRun, error) {
	streams := make([]resolvedStream, len(req.Streams))
	reqs := make([]config.KernelRequirements, len(req.Streams))
	for i, sr := range req.Streams {
		if sr.Kernel == "" {
			return nil, fmt.Errorf("streams[%d]: missing \"kernel\" (GET /v1/kernels lists the registry)", i)
		}
		var k *workloads.Kernel
		var err error
		if sr.Kernel == "needle" && sr.BF != 0 {
			k = workloads.NeedleKernel(sr.BF)
		} else {
			k, err = workloads.ByName(sr.Kernel)
			if err != nil {
				return nil, fmt.Errorf("streams[%d]: %w", i, err)
			}
		}
		st := resolvedStream{kernel: k, regs: sr.RegsPerThread, seed: sr.Seed}
		// The same clamps the plain form canonicalizes with.
		if st.regs <= 0 || st.regs > k.RegsNeeded {
			st.regs = k.RegsNeeded
		}
		if st.seed == 0 {
			st.seed = 1 // core.Runner's default seed
		}
		streams[i] = st
		reqs[i] = k.Requirements()
	}
	cfg, params, eparams, err := req.Machine.Resolve()
	if err != nil {
		return nil, err
	}
	if req.AllocTotalKB > 0 && req.FermiTotalKB > 0 {
		return nil, fmt.Errorf("at most one of alloc_total_kb and fermi_total_kb")
	}
	if req.AllocTotalKB > 0 {
		cfg, err = config.AllocateMulti(reqs, req.AllocTotalKB<<10, req.Machine.MaxThreads)
		if err != nil {
			return nil, err
		}
	}
	if req.FermiTotalKB > 0 {
		if req.FermiTotalKB<<10 <= config.BaselineRFBytes {
			return nil, fmt.Errorf("fermi_total_kb must exceed the fixed %dKB register file",
				config.BaselineRFBytes>>10)
		}
		cfg = config.ChooseFermiMulti(reqs, req.FermiTotalKB<<10-config.BaselineRFBytes, req.Machine.MaxThreads)
	}
	rr := &resolvedRun{
		streams: streams,
		cfg:     cfg,
		params:  params,
		eparams: eparams,
		canon:   machine.Describe(cfg, params, eparams),
	}
	if req.Probe {
		rr.probe = true
		rr.probeIvl = req.ProbeIntervalCycles
		if rr.probeIvl <= 0 {
			rr.probeIvl = probe.DefaultInterval
		}
	}
	rr.timeout = s.opts.DefaultTimeout
	if req.TimeoutMS > 0 {
		rr.timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	canonStreams := make([]canonicalStream, len(streams))
	for i, st := range streams {
		canonStreams[i] = canonicalStream{Kernel: st.kernel.Name, BF: st.kernel.BF, Regs: st.regs, Seed: st.seed}
	}
	ck, err := json.Marshal(canonicalRun{
		Machine:  rr.canon,
		Probe:    rr.probe,
		ProbeIvl: rr.probeIvl,
		Streams:  canonStreams,
	})
	if err != nil {
		return nil, err
	}
	rr.key = cacheKey(ck)
	rk := rr.canon
	rk.Design, rk.RFKB, rk.SharedKB, rk.CacheKB, rk.MaxThreads = "", 0, 0, 0, 0
	rkb, err := json.Marshal(rk)
	if err != nil {
		return nil, err
	}
	rr.runnerKey = string(rkb)
	return rr, nil
}

// runner returns (memoizing) the Runner for a resolved run's timing and
// energy parameters.
func (s *Server) runner(rr *resolvedRun) *core.Runner {
	s.runnersMu.Lock()
	defer s.runnersMu.Unlock()
	if r, ok := s.runners[rr.runnerKey]; ok {
		return r
	}
	if len(s.runners) >= runnerCacheCap {
		s.runners = make(map[string]*core.Runner, runnerCacheCap)
	}
	r := core.NewRunner()
	r.Params = rr.params
	r.Energy.P = rr.eparams
	s.runners[rr.runnerKey] = r
	return r
}

// simulate executes one resolved run and marshals its response body.
func (s *Server) simulate(ctx context.Context, rr *resolvedRun) (int, []byte) {
	ctx, cancel := context.WithTimeout(ctx, rr.timeout)
	defer cancel()
	var (
		opts    []core.RunOption
		ndjson  bytes.Buffer
		started = time.Now()
	)
	if rr.probe {
		sink := io.Writer(&ndjson)
		if rr.probeSink != nil {
			sink = io.MultiWriter(&ndjson, rr.probeSink)
		}
		opts = append(opts, core.WithProbe(probe.New(rr.probeIvl, sink)))
	}
	var res *core.Result
	var err error
	if rr.warm != nil {
		// Warm-prefix path: fork the group's shared prefix under this
		// item's divergable timing. Energy calibration comes from the
		// item's own runner, exactly as the direct path.
		var warm *core.Warm
		if warm, err = rr.warm.warmPrefix(s.opts.DefaultTimeout); err == nil {
			res, err = warm.Resume(ctx, s.runner(rr), rr.params)
		}
	} else if rr.streams != nil {
		streams := make([]core.StreamSpec, len(rr.streams))
		for i, st := range rr.streams {
			streams[i] = core.StreamSpec{Kernel: st.kernel, RegsPerThread: st.regs, Seed: st.seed}
		}
		res, err = s.runner(rr).RunCtx(ctx, core.RunSpec{
			Config:  rr.cfg,
			Streams: streams,
		}, opts...)
	} else {
		res, err = s.runner(rr).RunCtx(ctx, core.RunSpec{
			Kernel:        rr.kernel,
			Config:        rr.cfg,
			RegsPerThread: rr.regs,
			Seed:          rr.seed,
		}, opts...)
	}
	s.metrics.simRuns.Add(1)
	s.metrics.simSeconds.observe(time.Since(started).Seconds())
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.metrics.timeouts.Add(1)
		return http.StatusGatewayTimeout, errorBytes(errDeadline(fmt.Sprintf(
			"simulation exceeded its %v deadline (raise timeout_ms or the server -timeout)", rr.timeout)))
	case errors.Is(err, context.Canceled):
		// The client went away; 499 in nginx's vocabulary, nothing
		// useful to send. StatusRequestTimeout keeps it a client error.
		return http.StatusRequestTimeout, errorBytes(errCancelled("request cancelled"))
	case core.IsInfeasible(err):
		s.metrics.clientErrors.Add(1)
		return http.StatusUnprocessableEntity, errorBytes(errInfeasible(err.Error()))
	case err != nil:
		s.metrics.serverErrors.Add(1)
		return http.StatusInternalServerError, errorBytes(errInternal("%s", err.Error()))
	}
	resp := api.RunResponse{
		Key:    rr.key,
		Kernel: rr.label(),
		Config: api.ConfigInfo{
			Design:      rr.cfg.Design.String(),
			RFBytes:     rr.cfg.RFBytes,
			SharedBytes: rr.cfg.SharedBytes,
			CacheBytes:  rr.cfg.CacheBytes,
			MaxThreads:  rr.cfg.MaxThreads,
		},
		Occupancy: api.OccupancyInfo{
			CTAs:    res.Occupancy.CTAs,
			Threads: res.Occupancy.Threads,
			Warps:   res.Occupancy.Warps,
			Limiter: res.Occupancy.Limiter.String(),
		},
		Counters: res.Counters,
		IPC:      res.IPC(),
		WarpIPC:  res.Counters.IPC(),
		Energy: api.EnergyInfo{
			MRF: res.Energy.MRF, ORF: res.Energy.ORF, LRF: res.Energy.LRF,
			Shared: res.Energy.Shared, Cache: res.Energy.Cache, Tags: res.Energy.Tags,
			Other: res.Energy.Other, Leak: res.Energy.Leak, DRAM: res.Energy.DRAM,
			Total: res.Energy.Total(),
		},
		ProbeNDJSON: ndjson.String(),
		WarmCycles:  rr.warmCycles,
	}
	if rr.kernel != nil && rr.kernel.Name == "needle" {
		resp.BF = rr.kernel.BF
	}
	for i, sr := range res.Streams {
		st := rr.streams[i]
		counters := sr.Counters // copy: the response keeps a stable pointer
		out := api.StreamResult{
			Kernel: sr.Kernel,
			Occupancy: api.OccupancyInfo{
				CTAs:    sr.Occupancy.CTAs,
				Threads: sr.Occupancy.Threads,
				Warps:   sr.Occupancy.Warps,
				Limiter: sr.Occupancy.Limiter.String(),
			},
			Counters: &counters,
			IPC:      counters.ThreadIPC(),
			WarpIPC:  counters.IPC(),
		}
		if st.kernel.Name == "needle" {
			out.BF = st.kernel.BF
		}
		resp.Streams = append(resp.Streams, out)
	}
	return http.StatusOK, marshalBody(resp)
}

// compute runs the cache -> store -> coalesce -> simulate pipeline for
// one resolved run. It assumes admission is already settled. counted
// says the caller already recorded this lookup in the cache stats
// (handleRun's pre-admission check), so the recheck stays quiet. The
// cacheState return is "hit", "stored", "coalesced", or "miss".
func (s *Server) compute(ctx context.Context, rr *resolvedRun, counted bool) (status int, body []byte, cacheState string) {
	lookup := s.cache.get
	if counted {
		lookup = s.cache.peek
	}
	if body, ok := lookup(rr.key); ok {
		return http.StatusOK, body, "hit"
	}
	// The persistent store sits under the LRU: a body completed by a
	// previous process (or evicted from the LRU) replays byte-identically
	// and re-enters the LRU. This is the job resume path.
	if s.store != nil {
		if body, ok := s.store.Get(rr.key); ok {
			s.cache.put(rr.key, body)
			return http.StatusOK, body, "stored"
		}
	}
	s.flightMu.Lock()
	if c, ok := s.flight[rr.key]; ok {
		s.flightMu.Unlock()
		select {
		case <-c.done:
			s.metrics.coalesced.Add(1)
			return c.status, c.body, "coalesced"
		case <-ctx.Done():
			return http.StatusRequestTimeout, errorBytes(errCancelled("request cancelled")), "miss"
		}
	}
	c := &flightCall{done: make(chan struct{})}
	s.flight[rr.key] = c
	s.flightMu.Unlock()

	c.status, c.body = s.simulate(ctx, rr)
	if c.status == http.StatusOK {
		s.cache.put(rr.key, c.body)
		if s.store != nil {
			_ = s.store.Put(rr.key, c.body)
		}
	}
	s.flightMu.Lock()
	delete(s.flight, rr.key)
	s.flightMu.Unlock()
	close(c.done)
	return c.status, c.body, "miss"
}

// admit claims a gate slot for the request, translating backpressure
// into 429 + Retry-After. The returned release func is nil when
// admission failed.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) func() {
	err := s.gate.Acquire(r.Context())
	switch {
	case errors.Is(err, parallel.ErrQueueFull):
		s.metrics.rejected.Add(1)
		writeError(w, errOverCapacity(1+s.gate.Waiting(),
			"admission queue full (%d in flight, %d waiting); retry later",
			s.gate.InFlight(), s.gate.Waiting()))
		return nil
	case err != nil:
		writeError(w, errCancelled("request cancelled while queued"))
		return nil
	}
	return s.gate.Release
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	s.metrics.runRequests.Add(1)
	var req api.RunRequest
	if !decodeStrict(w, r, &req, &s.metrics) {
		return
	}
	rr, err := s.resolve(req)
	if err != nil {
		s.metrics.clientErrors.Add(1)
		writeError(w, errBadRequest("%s", err.Error()))
		return
	}
	// A cache hit skips admission entirely: replaying bytes is free.
	if body, ok := s.cache.get(rr.key); ok {
		writeBody(w, http.StatusOK, body, "hit")
		return
	}
	release := s.admit(w, r)
	if release == nil {
		return
	}
	defer release()
	status, body, state := s.compute(r.Context(), rr, true)
	writeBody(w, status, body, state)
}

// resolveBatch canonicalizes a batch request's runs, wiring warm-prefix
// groups. The returned envelope (nil on success) is the request's 400.
func (s *Server) resolveBatch(req api.BatchRequest) ([]*resolvedRun, *api.Error) {
	if len(req.Runs) == 0 {
		return nil, errBadRequest("empty batch: \"runs\" must list at least one run")
	}
	if req.WarmCycles < 0 {
		return nil, errBadRequest("warm_cycles must be non-negative")
	}
	resolved := make([]*resolvedRun, len(req.Runs))
	groups := make(map[string]*warmEntry)
	for i, run := range req.Runs {
		rr, err := s.resolve(run)
		if err != nil {
			return nil, errBadRequest("runs[%d]: %v", i, err)
		}
		// Warm-prefix sharing: group prefix-compatible unprobed items.
		// Fork-at-K results differ from cycle-0 results, so the cache
		// key grows a warm suffix; probed items keep the exact path and
		// their plain key.
		if req.WarmCycles > 0 && !rr.probe && rr.streams == nil {
			gk := warmGroupKey(rr, req.WarmCycles)
			e := groups[gk]
			if e == nil {
				e = &warmEntry{seed: rr, cycles: req.WarmCycles}
				groups[gk] = e
			}
			rr.warm = e
			rr.warmCycles = req.WarmCycles
			rr.key = cacheKey(fmt.Appendf(nil, "%s\x00warm\x00%d", rr.key, req.WarmCycles))
		}
		resolved[i] = rr
	}
	return resolved, nil
}

// batchItemBody marshals one batch entry from its settled (status,
// body). Both the synchronous /v1/batch and the job engine's final
// assembly funnel through here, which is what makes an async batch's
// result bytes identical to the synchronous response.
func batchItemBody(status int, body []byte) json.RawMessage {
	if status == http.StatusOK {
		return json.RawMessage(marshalBody(api.BatchItem{Result: rawResponse(body)}))
	}
	var env api.ErrorBody
	_ = json.Unmarshal(body, &env)
	return json.RawMessage(marshalBody(api.BatchItem{Error: env.Error, Status: status}))
}

// assembleBatch builds the final batch body from per-item outcomes, in
// item order.
func assembleBatch(statuses []int, bodies [][]byte) (int, []byte) {
	items := make([]json.RawMessage, len(statuses))
	for i := range statuses {
		items[i] = batchItemBody(statuses[i], bodies[i])
	}
	return http.StatusOK, marshalBody(api.BatchResponse{Results: items})
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.metrics.batchRequests.Add(1)
	var req api.BatchRequest
	if !decodeStrict(w, r, &req, &s.metrics) {
		return
	}
	resolved, aerr := s.resolveBatch(req)
	if aerr != nil {
		s.metrics.clientErrors.Add(1)
		writeError(w, aerr)
		return
	}
	release := s.admit(w, r)
	if release == nil {
		return
	}
	defer release()
	hits, misses := 0, 0
	var mu sync.Mutex
	// Items fan out across the process worker budget; Map keeps results
	// in request order, so the assembled body is worker-count invariant.
	items, _ := parallel.Map(len(resolved), func(i int) (json.RawMessage, error) {
		status, body, state := s.compute(r.Context(), resolved[i], false)
		mu.Lock()
		if state == "miss" {
			misses++
		} else {
			hits++
		}
		mu.Unlock()
		return batchItemBody(status, body), nil
	})
	body := marshalBody(api.BatchResponse{Results: items})
	writeBody(w, http.StatusOK, body, fmt.Sprintf("hits=%d misses=%d", hits, misses))
}

// rawResponse re-decodes a cached body into a RunResponse pointer for
// embedding in a batch item. The round trip is deterministic: the body
// was produced by marshalBody and re-marshals to the same bytes.
func rawResponse(body []byte) *api.RunResponse {
	var resp api.RunResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		return nil
	}
	return &resp
}

// resolvedExperiment is an api.ExperimentRequest after validation, with
// the hashed key its rendered tables cache and persist under.
type resolvedExperiment struct {
	name string
	pol  sched.Policy
	key  string
}

// resolveExperiment validates an experiment request.
func (s *Server) resolveExperiment(req api.ExperimentRequest) (*resolvedExperiment, *api.Error) {
	pol, err := sched.ParsePolicy(req.Scheduler)
	if err != nil {
		return nil, errBadRequest("%s", err.Error())
	}
	known := false
	for _, name := range harness.Experiments {
		if name == req.Name {
			known = true
			break
		}
	}
	if !known {
		return nil, errBadRequest("unknown experiment %q (have %v)", req.Name, harness.Experiments)
	}
	return &resolvedExperiment{
		name: req.Name,
		pol:  pol,
		key:  cacheKey(fmt.Appendf(nil, "experiment\x00%s\x00%s", req.Name, pol)),
	}, nil
}

// computeExperiment runs the cache -> store -> coalesce -> render
// pipeline for one experiment. Admission must already be settled.
func (s *Server) computeExperiment(er *resolvedExperiment) (status int, body []byte, cacheState string) {
	if body, ok := s.cache.get(er.key); ok {
		return http.StatusOK, body, "hit"
	}
	if s.store != nil {
		if body, ok := s.store.Get(er.key); ok {
			s.cache.put(er.key, body)
			return http.StatusOK, body, "stored"
		}
	}
	s.flightMu.Lock()
	if c, ok := s.flight[er.key]; ok {
		s.flightMu.Unlock()
		<-c.done
		s.metrics.coalesced.Add(1)
		return c.status, c.body, "coalesced"
	}
	c := &flightCall{done: make(chan struct{})}
	s.flight[er.key] = c
	s.flightMu.Unlock()

	// Experiments reuse the run path's Runner memoization keyed by the
	// default machine with the chosen scheduler.
	d := machine.Default()
	d.Timing.Scheduler = string(er.pol)
	rr, rerr := s.resolve(api.RunRequest{Kernel: "needle", Machine: d})
	if rerr != nil {
		c.status, c.body = http.StatusInternalServerError, errorBytes(errInternal("%s", rerr.Error()))
	} else {
		started := time.Now()
		t, err := harness.Run(s.runner(rr), er.name)
		s.metrics.simSeconds.observe(time.Since(started).Seconds())
		if err != nil {
			s.metrics.serverErrors.Add(1)
			c.status, c.body = http.StatusInternalServerError, errorBytes(errInternal("%s", err.Error()))
		} else {
			s.metrics.simRuns.Add(1)
			c.status, c.body = http.StatusOK, marshalBody(api.ExperimentResponse{
				Name:      er.name,
				Scheduler: string(er.pol),
				Text:      t.String(),
				CSV:       t.CSV(),
				Markdown:  t.Markdown(),
			})
			s.cache.put(er.key, c.body)
			if s.store != nil {
				_ = s.store.Put(er.key, c.body)
			}
		}
	}
	s.flightMu.Lock()
	delete(s.flight, er.key)
	s.flightMu.Unlock()
	close(c.done)
	return c.status, c.body, "miss"
}

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	s.metrics.experimentRequests.Add(1)
	var req api.ExperimentRequest
	if !decodeStrict(w, r, &req, &s.metrics) {
		return
	}
	er, aerr := s.resolveExperiment(req)
	if aerr != nil {
		s.metrics.clientErrors.Add(1)
		writeError(w, aerr)
		return
	}
	if body, ok := s.cache.get(er.key); ok {
		writeBody(w, http.StatusOK, body, "hit")
		return
	}
	release := s.admit(w, r)
	if release == nil {
		return
	}
	defer release()
	status, body, state := s.computeExperiment(er)
	writeBody(w, status, body, state)
}

func (s *Server) handleKernels(w http.ResponseWriter, _ *http.Request) {
	var out []api.KernelInfo
	for _, k := range workloads.All() {
		out = append(out, api.KernelInfo{
			Name:              k.Name,
			Suite:             k.Suite,
			Category:          k.Category.String(),
			Description:       k.Description,
			RegsNeeded:        k.RegsNeeded,
			ThreadsPerCTA:     k.ThreadsPerCTA,
			SharedBytesPerCTA: k.SharedBytesPerCTA,
			GridCTAs:          k.GridCTAs,
			BF:                k.BF,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	hits, misses, entries, bytes := s.cache.stats()
	snap := api.Snapshot{
		UptimeSeconds:      time.Since(s.metrics.start).Seconds(),
		RunRequests:        s.metrics.runRequests.Load(),
		BatchRequests:      s.metrics.batchRequests.Load(),
		ExperimentRequests: s.metrics.experimentRequests.Load(),
		JobRequests:        s.metrics.jobRequests.Load(),
		Rejected:           s.metrics.rejected.Load(),
		ClientErrors:       s.metrics.clientErrors.Load(),
		ServerErrors:       s.metrics.serverErrors.Load(),
		Timeouts:           s.metrics.timeouts.Load(),
		CacheHits:          hits,
		CacheMisses:        misses,
		CacheEntries:       entries,
		CacheBytes:         bytes,
		Coalesced:          s.metrics.coalesced.Load(),
		Jobs:               s.engine.Stats(),
		QueueDepth:         s.gate.Waiting(),
		InFlight:           s.gate.InFlight(),
		Workers:            s.gate.Capacity(),
		SimRuns:            s.metrics.simRuns.Load(),
		SimSeconds:         s.metrics.simSeconds.snapshot(),
		TraceCache:         workloads.TraceCacheSnapshot(),
	}
	if s.store != nil {
		snap.Store = s.store.Stats()
	}
	if total := hits + misses; total > 0 {
		snap.CacheHitRatio = float64(hits) / float64(total)
	}
	snap.TraceCacheHitRatio = snap.TraceCache.HitRatio()
	writeJSON(w, http.StatusOK, snap)
}

// decodeStrict decodes a JSON request body, rejecting unknown fields so
// misspelled parameters fail loudly instead of silently simulating the
// wrong thing.
func decodeStrict(w http.ResponseWriter, r *http.Request, v any, m *metrics) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		m.clientErrors.Add(1)
		writeError(w, errBadRequest("bad request body: %v", err))
		return false
	}
	return true
}

// marshalBody marshals a response body deterministically (compact JSON
// plus a trailing newline). Marshal errors cannot occur for the
// response types in this package.
func marshalBody(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		b, _ = json.Marshal(api.ErrorBody{Error: &api.Error{
			Code:    api.CodeInternal,
			Message: "internal: marshal: " + err.Error(),
		}})
	}
	return append(b, '\n')
}

// writeBody writes a prepared body with the cache-state header.
func writeBody(w http.ResponseWriter, status int, body []byte, cacheState string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", cacheState)
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// writeJSON marshals and writes an ad-hoc (uncached) response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(marshalBody(v))
}

// cacheKey hashes canonical request bytes into the result key shared by
// the LRU and the persistent store.
func cacheKey(canonical []byte) string {
	sum := sha256.Sum256(canonical)
	return hex.EncodeToString(sum[:])
}
