package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/api"
	"repro/internal/parallel"
)

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(s.Close)
	t.Cleanup(ts.Close)
	return s, ts
}

// do issues one request and returns the response plus its full body.
func do(t *testing.T, ts *httptest.Server, method, path, body string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, ts.URL+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func snapshot(t *testing.T, ts *httptest.Server) api.Snapshot {
	t.Helper()
	resp, body := do(t, ts, http.MethodGet, "/metrics", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	var s api.Snapshot
	if err := json.Unmarshal(body, &s); err != nil {
		t.Fatalf("metrics decode: %v", err)
	}
	return s
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, body := do(t, ts, http.MethodGet, "/healthz", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), `"ok"`) {
		t.Errorf("body = %s", body)
	}
}

func TestKernelsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, body := do(t, ts, http.MethodGet, "/v1/kernels", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var ks []api.KernelInfo
	if err := json.Unmarshal(body, &ks); err != nil {
		t.Fatal(err)
	}
	if len(ks) < 20 {
		t.Errorf("registry lists %d kernels, want the full Table 1 set", len(ks))
	}
	names := map[string]bool{}
	for _, k := range ks {
		names[k.Name] = true
		if k.RegsNeeded <= 0 || k.ThreadsPerCTA <= 0 {
			t.Errorf("kernel %s has empty requirements", k.Name)
		}
	}
	if !names["needle"] || !names["vectoradd"] {
		t.Errorf("registry missing expected kernels: %v", names)
	}
}

// TestRunCacheHit pins the core caching contract: the second identical
// request is served from cache with a byte-identical body, increments
// the hit counter, and simulates nothing new.
func TestRunCacheHit(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	const req = `{"kernel":"vectoradd"}`

	resp1, body1 := do(t, ts, http.MethodPost, "/v1/run", req)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first POST: %d: %s", resp1.StatusCode, body1)
	}
	if got := resp1.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("first X-Cache = %q, want miss", got)
	}
	m1 := snapshot(t, ts)
	if m1.SimRuns != 1 {
		t.Fatalf("sim_runs after first POST = %d, want 1", m1.SimRuns)
	}

	resp2, body2 := do(t, ts, http.MethodPost, "/v1/run", req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second POST: %d", resp2.StatusCode)
	}
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("second X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(body1, body2) {
		t.Error("cached response is not byte-identical to the computed one")
	}
	m2 := snapshot(t, ts)
	if m2.SimRuns != 1 {
		t.Errorf("sim_runs after cache hit = %d, want still 1", m2.SimRuns)
	}
	if m2.CacheHits != m1.CacheHits+1 {
		t.Errorf("cache_hits = %d, want %d", m2.CacheHits, m1.CacheHits+1)
	}

	var rr api.RunResponse
	if err := json.Unmarshal(body1, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Counters == nil || rr.Counters.Cycles == 0 || rr.IPC <= 0 || rr.Energy.Total <= 0 {
		t.Errorf("response missing results: %+v", rr)
	}
	if rr.Occupancy.CTAs <= 0 {
		t.Errorf("occupancy CTAs = %d", rr.Occupancy.CTAs)
	}
}

// TestRunCanonicalKeySharing asserts that different spellings of the
// same run — defaults made explicit, alias scheduler/design names —
// share one cache entry.
func TestRunCanonicalKeySharing(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp1, body1 := do(t, ts, http.MethodPost, "/v1/run", `{"kernel":"vectoradd"}`)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first POST: %d: %s", resp1.StatusCode, body1)
	}
	explicit := `{"kernel":"vectoradd","seed":1,
		"machine":{"design":"partitioned","rf_kb":256,"shared_kb":64,"cache_kb":64,
		           "timing":{"scheduler":"twolevel"}}}`
	resp2, body2 := do(t, ts, http.MethodPost, "/v1/run", explicit)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("explicit POST: %d: %s", resp2.StatusCode, body2)
	}
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("explicit spelling X-Cache = %q, want hit (canonical keys should match)", got)
	}
	if !bytes.Equal(body1, body2) {
		t.Error("equivalent requests returned different bodies")
	}
	// A genuinely different run must not share the entry.
	resp3, _ := do(t, ts, http.MethodPost, "/v1/run", `{"kernel":"vectoradd","seed":7}`)
	if got := resp3.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("different seed X-Cache = %q, want miss", got)
	}
}

// TestBatchDeterminismAcrossWorkers is the service-level determinism
// pin: the same batch against fresh servers under j=1 and j=8 must
// produce byte-identical bodies, including item order and an
// infeasible item's error text.
func TestBatchDeterminismAcrossWorkers(t *testing.T) {
	defer parallel.SetWorkers(0)
	const batch = `{"runs":[
		{"kernel":"vectoradd"},
		{"kernel":"needle","bf":16},
		{"kernel":"vectoradd"},
		{"kernel":"needle","machine":{"rf_kb":1,"shared_kb":1,"cache_kb":1}},
		{"kernel":"dwthaar1d","machine":{"design":"unified","rf_kb":0,"shared_kb":0,"cache_kb":384}}
	]}`
	bodies := make([][]byte, 0, 2)
	for _, j := range []int{1, 8} {
		parallel.SetWorkers(j)
		_, ts := newTestServer(t, Options{InFlight: 4})
		resp, body := do(t, ts, http.MethodPost, "/v1/batch", batch)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("j=%d: status %d: %s", j, resp.StatusCode, body)
		}
		bodies = append(bodies, body)
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Error("batch bodies differ between j=1 and j=8")
	}
	var br api.BatchResponse
	if err := json.Unmarshal(bodies[0], &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 5 {
		t.Fatalf("items = %d, want 5", len(br.Results))
	}
	var infeasible api.BatchItem
	if err := json.Unmarshal(br.Results[3], &infeasible); err != nil {
		t.Fatal(err)
	}
	if infeasible.Error == nil || infeasible.Error.Code != api.CodeInfeasible || infeasible.Status != http.StatusUnprocessableEntity {
		t.Errorf("infeasible item = %+v, want a 422 infeasible error entry", infeasible)
	}
	var dup api.BatchItem
	if err := json.Unmarshal(br.Results[2], &dup); err != nil {
		t.Fatal(err)
	}
	if dup.Result == nil {
		t.Fatal("duplicate item missing result")
	}
}

// TestBackpressure asserts the saturation contract on every gated
// endpoint: with the gate full and no queue, a new request is answered
// 429 carrying BOTH the Retry-After header and the over_capacity error
// envelope with retry_after_s, and succeeds once capacity frees up.
func TestBackpressure(t *testing.T) {
	s, ts := newTestServer(t, Options{InFlight: 1, Queue: -1})
	if err := s.gate.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	saturated := []struct {
		path, body string
	}{
		{"/v1/run", `{"kernel":"sto"}`},
		{"/v1/batch", `{"runs":[{"kernel":"sto"}]}`},
	}
	for _, c := range saturated {
		resp, body := do(t, ts, http.MethodPost, c.path, c.body)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("%s saturated status = %d, want 429 (body %s)", c.path, resp.StatusCode, body)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Errorf("%s: 429 without Retry-After", c.path)
		}
		var env api.ErrorBody
		if err := json.Unmarshal(body, &env); err != nil || env.Error == nil {
			t.Fatalf("%s: 429 body %s is not an error envelope", c.path, body)
		}
		if env.Error.Code != api.CodeOverCapacity {
			t.Errorf("%s: 429 code = %q, want %q", c.path, env.Error.Code, api.CodeOverCapacity)
		}
		if env.Error.RetryAfterS < 1 {
			t.Errorf("%s: 429 retry_after_s = %d, want >= 1", c.path, env.Error.RetryAfterS)
		}
	}
	if m := snapshot(t, ts); m.Rejected != int64(len(saturated)) {
		t.Errorf("rejected = %d, want %d", m.Rejected, len(saturated))
	}
	s.gate.Release()
	resp2, body2 := do(t, ts, http.MethodPost, "/v1/run", `{"kernel":"sto"}`)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-release status = %d: %s", resp2.StatusCode, body2)
	}
}

// TestSimulateDeadline pins the 504 path deterministically: an already
// expired deadline aborts the cycle loop at its first context check.
func TestSimulateDeadline(t *testing.T) {
	s, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rr, err := s.resolve(api.RunRequest{Kernel: "needle"})
	if err != nil {
		t.Fatal(err)
	}
	rr.timeout = time.Nanosecond
	status, body := s.simulate(context.Background(), rr)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body %s)", status, body)
	}
	if !strings.Contains(string(body), "deadline") {
		t.Errorf("body = %s, want a deadline message", body)
	}
	if got := s.metrics.timeouts.Load(); got != 1 {
		t.Errorf("timeouts = %d, want 1", got)
	}
}

func TestExperimentEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp1, body1 := do(t, ts, http.MethodPost, "/v1/experiment", `{"name":"table4"}`)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("table4: %d: %s", resp1.StatusCode, body1)
	}
	if got := resp1.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("first X-Cache = %q, want miss", got)
	}
	var er api.ExperimentResponse
	if err := json.Unmarshal(body1, &er); err != nil {
		t.Fatal(err)
	}
	if er.Name != "table4" || er.Scheduler != "twolevel" {
		t.Errorf("echo = %q/%q", er.Name, er.Scheduler)
	}
	if er.Text == "" || er.CSV == "" || !strings.HasPrefix(er.Markdown, "|") {
		t.Errorf("missing renderings: %+v", er)
	}
	resp2, body2 := do(t, ts, http.MethodPost, "/v1/experiment", `{"name":"table4"}`)
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("second X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(body1, body2) {
		t.Error("cached experiment body differs")
	}

	resp3, body3 := do(t, ts, http.MethodPost, "/v1/experiment", `{"name":"bogus"}`)
	if resp3.StatusCode != http.StatusBadRequest || !strings.Contains(string(body3), "table1") {
		t.Errorf("unknown experiment: %d %s, want 400 listing names", resp3.StatusCode, body3)
	}
	resp4, _ := do(t, ts, http.MethodPost, "/v1/experiment", `{"name":"table4","scheduler":"fifo"}`)
	if resp4.StatusCode != http.StatusBadRequest {
		t.Errorf("bad scheduler: %d, want 400", resp4.StatusCode)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	cases := []struct {
		name, method, path, body string
		want                     int
		wantIn                   string
	}{
		{"unknown kernel", http.MethodPost, "/v1/run", `{"kernel":"nope"}`, http.StatusBadRequest, "nope"},
		{"missing kernel", http.MethodPost, "/v1/run", `{}`, http.StatusBadRequest, "kernel"},
		{"unknown field", http.MethodPost, "/v1/run", `{"kern":"vectoradd"}`, http.StatusBadRequest, "kern"},
		{"bad machine", http.MethodPost, "/v1/run", `{"kernel":"vectoradd","machine":{"design":"hexagonal"}}`, http.StatusBadRequest, "hexagonal"},
		{"empty batch", http.MethodPost, "/v1/batch", `{"runs":[]}`, http.StatusBadRequest, "runs"},
		{"batch item error names index", http.MethodPost, "/v1/batch", `{"runs":[{"kernel":"vectoradd"},{"kernel":"nope"}]}`, http.StatusBadRequest, "runs[1]"},
		{"wrong method", http.MethodGet, "/v1/run", "", http.StatusMethodNotAllowed, ""},
	}
	for _, c := range cases {
		resp, body := do(t, ts, c.method, c.path, c.body)
		if resp.StatusCode != c.want {
			t.Errorf("%s: status = %d, want %d (body %s)", c.name, resp.StatusCode, c.want, body)
		}
		if c.wantIn != "" && !strings.Contains(string(body), c.wantIn) {
			t.Errorf("%s: body %s, want mention of %q", c.name, body, c.wantIn)
		}
	}
}

// TestInfeasibleRun asserts a configuration the kernel cannot fit is a
// structured 422, not a 500.
func TestInfeasibleRun(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, body := do(t, ts, http.MethodPost, "/v1/run",
		`{"kernel":"needle","machine":{"rf_kb":1,"shared_kb":1,"cache_kb":1}}`)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422 (body %s)", resp.StatusCode, body)
	}
	var env api.ErrorBody
	if err := json.Unmarshal(body, &env); err != nil || env.Error == nil {
		t.Fatalf("want the error envelope, got %s", body)
	}
	if env.Error.Code != api.CodeInfeasible {
		t.Errorf("code = %q, want %q", env.Error.Code, api.CodeInfeasible)
	}
}

// TestProbeRun asserts the probe round-trips through the service and
// stays out of the unprobed request's cache key.
func TestProbeRun(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, body := do(t, ts, http.MethodPost, "/v1/run", `{"kernel":"vectoradd","probe":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("probed run: %d: %s", resp.StatusCode, body)
	}
	var rr api.RunResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rr.ProbeNDJSON, "\"type\":") {
		t.Errorf("probe NDJSON missing records: %.80s", rr.ProbeNDJSON)
	}
	// The unprobed spelling is a different canonical request.
	resp2, _ := do(t, ts, http.MethodPost, "/v1/run", `{"kernel":"vectoradd"}`)
	if got := resp2.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("unprobed after probed X-Cache = %q, want miss", got)
	}
}

func TestMetricsShape(t *testing.T) {
	_, ts := newTestServer(t, Options{InFlight: 3})
	do(t, ts, http.MethodPost, "/v1/run", `{"kernel":"vectoradd"}`)
	m := snapshot(t, ts)
	if m.RunRequests != 1 || m.Workers != 3 {
		t.Errorf("run_requests=%d workers=%d", m.RunRequests, m.Workers)
	}
	if m.SimSeconds.Count != 1 || len(m.SimSeconds.Buckets) != len(simSecondsBuckets)+1 {
		t.Errorf("sim_seconds = %+v", m.SimSeconds)
	}
	if !m.SimSeconds.Buckets[len(m.SimSeconds.Buckets)-1].Infinite {
		t.Error("last histogram bucket should be +Inf")
	}
	if m.TraceCache.Lookups == 0 {
		t.Error("trace cache lookups = 0 after a simulation")
	}
	if m.UptimeSeconds <= 0 {
		t.Error("uptime not positive")
	}
}
