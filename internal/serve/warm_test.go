package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"repro/api"
)

// warmBatchBody is a batch of DRAM-latency variants of one kernel: the
// items agree on every prefix-defining field and so share one warm
// prefix when warm_cycles is set.
const warmBatchBody = `{"warm_cycles":2000,"runs":[
	{"kernel":"bfs","machine":{"timing":{"dram_latency":300}}},
	{"kernel":"bfs","machine":{"timing":{"dram_latency":400}}},
	{"kernel":"bfs","machine":{"timing":{"dram_latency":500}}}]}`

// decodeBatch unpacks a BatchResponse's items.
func decodeBatch(t *testing.T, body []byte) []api.BatchItem {
	t.Helper()
	var br api.BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatalf("batch decode: %v\n%s", err, body)
	}
	items := make([]api.BatchItem, len(br.Results))
	for i, raw := range br.Results {
		if err := json.Unmarshal(raw, &items[i]); err != nil {
			t.Fatalf("item %d decode: %v", i, err)
		}
	}
	return items
}

// TestBatchWarmSharing pins the warm-prefix batch semantics: a
// warm_cycles batch succeeds, marks every result with the warm cycle,
// gives warm items distinct cache keys from their cycle-0 twins, and
// replays byte-identically from cache on repetition.
func TestBatchWarmSharing(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, first := do(t, ts, http.MethodPost, "/v1/batch", warmBatchBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, first)
	}
	items := decodeBatch(t, first)
	keys := map[string]bool{}
	for i, it := range items {
		if it.Error != nil {
			t.Fatalf("item %d failed: %s", i, it.Error)
		}
		if it.Result.WarmCycles != 2000 {
			t.Errorf("item %d warm_cycles = %d, want 2000", i, it.Result.WarmCycles)
		}
		if it.Result.Counters == nil || it.Result.Counters.Cycles <= 2000 {
			t.Errorf("item %d finished at cycle %v, want past the warm prefix", i, it.Result.Counters)
		}
		keys[it.Result.Key] = true
	}
	if len(keys) != len(items) {
		t.Errorf("warm items share cache keys: %v", keys)
	}
	// Higher DRAM latency after the switch must not make the run faster.
	if items[0].Result.Counters.Cycles > items[2].Result.Counters.Cycles {
		t.Errorf("dram_latency 300 ran %d cycles, 500 ran %d — ordering inverted",
			items[0].Result.Counters.Cycles, items[2].Result.Counters.Cycles)
	}

	// The same item without warm_cycles is a different result: cycle-0
	// semantics, distinct key, no warm marker.
	resp, runBody := do(t, ts, http.MethodPost, "/v1/run", `{"kernel":"bfs","machine":{"timing":{"dram_latency":300}}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run status = %d", resp.StatusCode)
	}
	var plain api.RunResponse
	if err := json.Unmarshal(runBody, &plain); err != nil {
		t.Fatal(err)
	}
	if plain.WarmCycles != 0 {
		t.Errorf("plain run reports warm_cycles %d", plain.WarmCycles)
	}
	if keys[plain.Key] {
		t.Error("warm item reused the cycle-0 cache key; results would alias")
	}

	// Repeating the warm batch replays cached bytes, byte-identically.
	resp, second := do(t, ts, http.MethodPost, "/v1/batch", warmBatchBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat status = %d", resp.StatusCode)
	}
	if !bytes.Equal(first, second) {
		t.Error("repeated warm batch body differs from the first")
	}
	if got := resp.Header.Get("X-Cache"); got != "hits=3 misses=0" {
		t.Errorf("repeat X-Cache = %q, want all hits", got)
	}
}

// TestBatchWarmProbeBypass pins the probe interlock: a probed item in a
// warm batch takes the exact cycle-0 path — same key and bytes as a
// direct probed /v1/run — because probes observe from the first cycle.
func TestBatchWarmProbeBypass(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	const probedRun = `{"kernel":"vectoradd","probe":true}`
	resp, runBody := do(t, ts, http.MethodPost, "/v1/run", probedRun)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run status = %d", resp.StatusCode)
	}
	resp, batchBody := do(t, ts, http.MethodPost, "/v1/batch",
		`{"warm_cycles":1000,"runs":[`+probedRun+`]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d", resp.StatusCode)
	}
	items := decodeBatch(t, batchBody)
	if items[0].Error != nil {
		t.Fatalf("probed item failed: %s", items[0].Error)
	}
	if items[0].Result.WarmCycles != 0 {
		t.Errorf("probed item reports warm_cycles %d, want exact path", items[0].Result.WarmCycles)
	}
	var plain api.RunResponse
	if err := json.Unmarshal(runBody, &plain); err != nil {
		t.Fatal(err)
	}
	if items[0].Result.Key != plain.Key {
		t.Errorf("probed batch item key %s differs from direct run key %s", items[0].Result.Key, plain.Key)
	}
	if got := resp.Header.Get("X-Cache"); got != "hits=1 misses=0" {
		t.Errorf("X-Cache = %q, want a cache hit off the direct run", got)
	}
}

// TestBatchWarmRejectsNegative pins input validation.
func TestBatchWarmRejectsNegative(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, _ := do(t, ts, http.MethodPost, "/v1/batch", `{"warm_cycles":-5,"runs":[{"kernel":"bfs"}]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}
