package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/workloads"
)

// simSecondsBuckets are the upper bounds of the sim-wall-time histogram
// in seconds; the implicit last bucket is +Inf.
var simSecondsBuckets = [...]float64{0.001, 0.01, 0.1, 1, 10}

// histogram is a fixed-bucket duration histogram (no new deps: the
// snapshot marshals as plain JSON).
type histogram struct {
	mu      sync.Mutex
	counts  [len(simSecondsBuckets) + 1]int64
	sum     float64
	samples int64
}

func (h *histogram) observe(seconds float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.samples++
	h.sum += seconds
	for i, le := range simSecondsBuckets {
		if seconds <= le {
			h.counts[i]++
			return
		}
	}
	h.counts[len(simSecondsBuckets)]++
}

// HistogramBucket is one bucket of the sim-seconds histogram; LE is the
// inclusive upper bound in seconds ("+Inf" is encoded as 0 on the last
// bucket's Infinite flag to stay valid JSON).
type HistogramBucket struct {
	LE       float64 `json:"le,omitempty"`
	Infinite bool    `json:"infinite,omitempty"`
	Count    int64   `json:"count"`
}

// HistogramSnapshot is the JSON form of the sim-seconds histogram.
type HistogramSnapshot struct {
	Count   int64             `json:"count"`
	SumSecs float64           `json:"sum_seconds"`
	Buckets []HistogramBucket `json:"buckets"`
}

func (h *histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{Count: h.samples, SumSecs: h.sum}
	for i, le := range simSecondsBuckets {
		s.Buckets = append(s.Buckets, HistogramBucket{LE: le, Count: h.counts[i]})
	}
	s.Buckets = append(s.Buckets, HistogramBucket{Infinite: true, Count: h.counts[len(simSecondsBuckets)]})
	return s
}

// metrics aggregates the service's counters. All fields are updated
// with atomics; the snapshot is approximate under concurrency, like
// every metrics read.
type metrics struct {
	start time.Time

	runRequests        atomic.Int64
	batchRequests      atomic.Int64
	experimentRequests atomic.Int64
	rejected           atomic.Int64
	clientErrors       atomic.Int64
	serverErrors       atomic.Int64
	timeouts           atomic.Int64
	coalesced          atomic.Int64
	simRuns            atomic.Int64

	simSeconds histogram
}

// Snapshot is the GET /metrics response schema.
type Snapshot struct {
	UptimeSeconds float64 `json:"uptime_seconds"`

	// Request counts by endpoint, plus outcome counters. Rejected is
	// the 429 backpressure count; Timeouts the 504 deadline count.
	RunRequests        int64 `json:"run_requests"`
	BatchRequests      int64 `json:"batch_requests"`
	ExperimentRequests int64 `json:"experiment_requests"`
	Rejected           int64 `json:"rejected"`
	ClientErrors       int64 `json:"client_errors"`
	ServerErrors       int64 `json:"server_errors"`
	Timeouts           int64 `json:"timeouts"`

	// Result-cache effectiveness. Coalesced counts requests that waited
	// on an identical in-flight computation instead of simulating.
	CacheHits     int64   `json:"cache_hits"`
	CacheMisses   int64   `json:"cache_misses"`
	CacheHitRatio float64 `json:"cache_hit_ratio"`
	CacheEntries  int     `json:"cache_entries"`
	CacheBytes    int64   `json:"cache_bytes"`
	Coalesced     int64   `json:"coalesced"`

	// Admission state: queue depth and in-flight holders of the gate.
	QueueDepth int `json:"queue_depth"`
	InFlight   int `json:"in_flight"`
	Workers    int `json:"workers"`

	// SimRuns counts simulations actually executed (misses that ran);
	// SimSeconds is their wall-time histogram.
	SimRuns    int64             `json:"sim_runs"`
	SimSeconds HistogramSnapshot `json:"sim_seconds"`

	// TraceCache is the process-wide trace cache underneath the result
	// cache (see internal/workloads).
	TraceCache         workloads.TraceCacheStats `json:"trace_cache"`
	TraceCacheHitRatio float64                   `json:"trace_cache_hit_ratio"`
}
