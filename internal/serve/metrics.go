package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/api"
)

// simSecondsBuckets are the upper bounds of the sim-wall-time histogram
// in seconds; the implicit last bucket is +Inf.
var simSecondsBuckets = [...]float64{0.001, 0.01, 0.1, 1, 10}

// histogram is a fixed-bucket duration histogram (no new deps: the
// snapshot marshals as plain JSON via api.HistogramSnapshot).
type histogram struct {
	mu      sync.Mutex
	counts  [len(simSecondsBuckets) + 1]int64
	sum     float64
	samples int64
}

func (h *histogram) observe(seconds float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.samples++
	h.sum += seconds
	for i, le := range simSecondsBuckets {
		if seconds <= le {
			h.counts[i]++
			return
		}
	}
	h.counts[len(simSecondsBuckets)]++
}

func (h *histogram) snapshot() api.HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := api.HistogramSnapshot{Count: h.samples, SumSecs: h.sum}
	for i, le := range simSecondsBuckets {
		s.Buckets = append(s.Buckets, api.HistogramBucket{LE: le, Count: h.counts[i]})
	}
	s.Buckets = append(s.Buckets, api.HistogramBucket{Infinite: true, Count: h.counts[len(simSecondsBuckets)]})
	return s
}

// metrics aggregates the service's counters. All fields are updated
// with atomics; the snapshot is approximate under concurrency, like
// every metrics read. The JSON schema is api.Snapshot.
type metrics struct {
	start time.Time

	runRequests        atomic.Int64
	batchRequests      atomic.Int64
	experimentRequests atomic.Int64
	jobRequests        atomic.Int64
	rejected           atomic.Int64
	clientErrors       atomic.Int64
	serverErrors       atomic.Int64
	timeouts           atomic.Int64
	coalesced          atomic.Int64
	simRuns            atomic.Int64

	simSeconds histogram
}
