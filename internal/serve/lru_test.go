package serve

import (
	"bytes"
	"testing"
)

func TestResultCacheEviction(t *testing.T) {
	c := newResultCache(2)
	c.put("a", []byte("A"))
	c.put("b", []byte("B"))
	if _, ok := c.get("a"); !ok { // promotes a over b
		t.Fatal("a evicted prematurely")
	}
	c.put("c", []byte("C")) // evicts b (LRU)
	if _, ok := c.get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("a should have survived (promoted)")
	}
	if _, ok := c.get("c"); !ok {
		t.Error("c should be present")
	}
	hits, misses, entries, bytesHeld := c.stats()
	if entries != 2 {
		t.Errorf("entries = %d, want 2", entries)
	}
	if hits != 3 || misses != 1 {
		t.Errorf("hits,misses = %d,%d, want 3,1", hits, misses)
	}
	if bytesHeld != 2 {
		t.Errorf("bytes = %d, want 2", bytesHeld)
	}
}

func TestResultCacheKeepsFirstBody(t *testing.T) {
	c := newResultCache(4)
	c.put("k", []byte("first"))
	c.put("k", []byte("second"))
	body, ok := c.get("k")
	if !ok || !bytes.Equal(body, []byte("first")) {
		t.Errorf("body = %q, want the first stored body", body)
	}
}

func TestResultCachePeekDoesNotCount(t *testing.T) {
	c := newResultCache(4)
	c.put("k", []byte("v"))
	if _, ok := c.peek("k"); !ok {
		t.Fatal("peek miss on present key")
	}
	if _, ok := c.peek("absent"); ok {
		t.Fatal("peek hit on absent key")
	}
	hits, misses, _, _ := c.stats()
	if hits != 0 || misses != 0 {
		t.Errorf("peek touched counters: hits=%d misses=%d", hits, misses)
	}
}

func TestResultCacheMinimumCapacity(t *testing.T) {
	c := newResultCache(0)
	c.put("a", []byte("A"))
	c.put("b", []byte("B"))
	if _, _, entries, _ := c.stats(); entries != 1 {
		t.Errorf("entries = %d, want 1 (capacity clamped to 1)", entries)
	}
}
