package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/api"
	"repro/internal/jobs"
)

// pollJob polls GET /v1/jobs/{id} until the job is terminal.
func pollJob(t *testing.T, ts *httptest.Server, id string) api.Job {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, body := do(t, ts, http.MethodGet, "/v1/jobs/"+id, "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET job %s: %d: %s", id, resp.StatusCode, body)
		}
		var j api.Job
		if err := json.Unmarshal(body, &j); err != nil {
			t.Fatal(err)
		}
		if j.Terminal() {
			return j
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return api.Job{}
}

func submitJob(t *testing.T, ts *httptest.Server, body string) api.Job {
	t.Helper()
	resp, b := do(t, ts, http.MethodPost, "/v1/jobs", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs: %d: %s", resp.StatusCode, b)
	}
	var j api.Job
	if err := json.Unmarshal(b, &j); err != nil {
		t.Fatal(err)
	}
	if j.ID == "" || j.State != api.JobQueued {
		t.Fatalf("submit view = %+v", j)
	}
	return j
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	Type string
	Data string
}

// readSSE consumes a /v1/jobs/{id}/events stream to completion.
func readSSE(t *testing.T, ts *httptest.Server, id string) []sseEvent {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET events: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	var evs []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.Type != "" {
				evs = append(evs, cur)
			}
			cur = sseEvent{}
		case strings.HasPrefix(line, "event: "):
			cur.Type = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.Data = strings.TrimPrefix(line, "data: ")
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return evs
}

const lifecycleBatch = `{"runs":[
	{"kernel":"vectoradd"},
	{"kernel":"vectoradd","seed":7},
	{"kernel":"sto"}
]}`

// TestJobLifecycle is the submit -> poll -> events -> result walk: the
// job's final bytes must be identical to the synchronous /v1/batch
// response for the same request, and the event stream must be the
// deterministic queued/running prefix, items in index order, then done.
func TestJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Options{DataDir: t.TempDir()})

	respSync, syncBody := do(t, ts, http.MethodPost, "/v1/batch", lifecycleBatch)
	if respSync.StatusCode != http.StatusOK {
		t.Fatalf("sync batch: %d: %s", respSync.StatusCode, syncBody)
	}

	j := submitJob(t, ts, `{"batch":`+lifecycleBatch+`}`)
	if j.Type != "batch" || j.Progress.Total != 3 {
		t.Fatalf("submit view = %+v", j)
	}
	done := pollJob(t, ts, j.ID)
	if done.State != api.JobDone || done.Progress.Done != 3 {
		t.Fatalf("terminal view = %+v", done)
	}
	// All three items were already computed synchronously: the job must
	// have served them from cache, not re-simulated.
	if done.Progress.CacheHits+done.Progress.StoreHits != 3 {
		t.Errorf("progress = %+v, want 3 cache/store hits", done.Progress)
	}

	// Result bytes are identical to the synchronous response.
	respJob, jobBody := do(t, ts, http.MethodGet, "/v1/jobs/"+j.ID+"/result", "")
	if respJob.StatusCode != http.StatusOK {
		t.Fatalf("job result: %d: %s", respJob.StatusCode, jobBody)
	}
	if got := respJob.Header.Get("X-Cache"); got != "job" {
		t.Errorf("result X-Cache = %q, want job", got)
	}
	if !bytes.Equal(jobBody, syncBody) {
		t.Errorf("job result differs from sync batch:\njob:  %s\nsync: %s", jobBody, syncBody)
	}

	// The replayed event stream: state events first, then items in index
	// order with monotone done counts, terminated by done.
	evs := readSSE(t, ts, j.ID)
	if len(evs) < 5 {
		t.Fatalf("events = %+v, want >= 5", evs)
	}
	if evs[0].Type != api.EventState || evs[len(evs)-1].Type != api.EventDone {
		t.Fatalf("stream frame = %s..%s, want state..done", evs[0].Type, evs[len(evs)-1].Type)
	}
	wantIdx := 0
	for _, ev := range evs {
		if ev.Type != api.EventItem {
			continue
		}
		var ie api.JobItemEvent
		if err := json.Unmarshal([]byte(ev.Data), &ie); err != nil {
			t.Fatal(err)
		}
		if ie.Index != wantIdx || ie.Done != wantIdx+1 || ie.Total != 3 {
			t.Fatalf("item event = %+v, want index %d done %d", ie, wantIdx, wantIdx+1)
		}
		wantIdx++
	}
	if wantIdx != 3 {
		t.Errorf("saw %d item events, want 3", wantIdx)
	}
}

// TestJobSweep pins the server-side sweep expansion: a sweep submits as
// a batch-shaped job with one item per point and a descriptive note.
func TestJobSweep(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	j := submitJob(t, ts, `{"sweep":{"kernel":"vectoradd","resource":"cache","from":32,"to":64,"step":"2x"}}`)
	if j.Type != "sweep" || j.Progress.Total != 2 {
		t.Fatalf("submit view = %+v", j)
	}
	if !strings.Contains(j.Note, "sweep vectoradd cache 32..64") {
		t.Errorf("note = %q", j.Note)
	}
	done := pollJob(t, ts, j.ID)
	if done.State != api.JobDone {
		t.Fatalf("terminal view = %+v", done)
	}
	resp, body := do(t, ts, http.MethodGet, "/v1/jobs/"+j.ID+"/result", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: %d: %s", resp.StatusCode, body)
	}
	var br api.BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	items, err := br.Items()
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 2 {
		t.Fatalf("sweep result has %d items, want 2", len(items))
	}
	want := []int{32 << 10, 64 << 10}
	for i, it := range items {
		if it.Error != nil || it.Result == nil {
			t.Fatalf("item %d = %+v", i, it)
		}
		if it.Result.Config.CacheBytes != want[i] {
			t.Errorf("item %d cache_bytes = %d, want %d", i, it.Result.Config.CacheBytes, want[i])
		}
	}
}

// TestJobSubmitValidation pins the 400 contract: a bad spec is the
// submitter's error envelope, never a failed job.
func TestJobSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	cases := []struct {
		body string
		want string // substring of the error message
	}{
		{`{}`, "exactly one"},
		{`{"run":{"kernel":"vectoradd"},"batch":{"runs":[]}}`, "exactly one"},
		{`{"run":{"kernel":"nope"}}`, "run:"},
		{`{"sweep":{"kernel":"vectoradd","resource":"rf","from":32,"to":64,"step":"2x","warm_cycles":100}}`, "warm_cycles"},
		{`{"sweep":{"kernel":"vectoradd","resource":"voltage","from":1,"to":2,"step":"1"}}`, "unknown resource"},
		{`{"unknown_field":1}`, "bad request body"},
	}
	for _, c := range cases {
		resp, body := do(t, ts, http.MethodPost, "/v1/jobs", c.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s: status = %d, want 400", c.body, resp.StatusCode)
			continue
		}
		var env api.ErrorBody
		if err := json.Unmarshal(body, &env); err != nil || env.Error == nil {
			t.Errorf("POST %s: body %s is not an error envelope", c.body, body)
			continue
		}
		if env.Error.Code != api.CodeBadRequest || !strings.Contains(env.Error.Message, c.want) {
			t.Errorf("POST %s: error = %+v, want code bad_request containing %q", c.body, env.Error, c.want)
		}
	}
	resp, body := do(t, ts, http.MethodGet, "/v1/jobs/j999", "")
	if resp.StatusCode != http.StatusNotFound || !strings.Contains(string(body), api.CodeNotFound) {
		t.Errorf("GET unknown job: %d %s, want 404 envelope", resp.StatusCode, body)
	}
}

// TestJobResultNotReady pins the 409 not_ready envelope while a job is
// still executing.
func TestJobResultNotReady(t *testing.T) {
	block := make(chan struct{})
	opts := Options{execWrap: func(inner jobs.Exec) jobs.Exec {
		return func(ctx context.Context, it jobs.Item, ic *jobs.ItemContext) (int, []byte, string) {
			select {
			case <-block:
			case <-ctx.Done():
			}
			return inner(ctx, it, ic)
		}
	}}
	_, ts := newTestServer(t, opts)
	defer close(block)
	j := submitJob(t, ts, `{"run":{"kernel":"vectoradd"}}`)
	resp, body := do(t, ts, http.MethodGet, "/v1/jobs/"+j.ID+"/result", "")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("result while running: %d, want 409", resp.StatusCode)
	}
	var env api.ErrorBody
	if err := json.Unmarshal(body, &env); err != nil || env.Error == nil || env.Error.Code != api.CodeNotReady {
		t.Fatalf("body = %s, want a not_ready envelope", body)
	}
}

// TestJobCancel pins DELETE /v1/jobs/{id}: the job settles cancelled
// with the cancelled envelope code.
func TestJobCancel(t *testing.T) {
	started := make(chan struct{}, 1)
	opts := Options{execWrap: func(inner jobs.Exec) jobs.Exec {
		return func(ctx context.Context, it jobs.Item, ic *jobs.ItemContext) (int, []byte, string) {
			select {
			case started <- struct{}{}:
			default:
			}
			<-ctx.Done()
			return http.StatusRequestTimeout, errorBytes(errCancelled("cancelled")), "miss"
		}
	}}
	_, ts := newTestServer(t, opts)
	j := submitJob(t, ts, `{"run":{"kernel":"vectoradd"}}`)
	<-started
	resp, body := do(t, ts, http.MethodDelete, "/v1/jobs/"+j.ID, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: %d: %s", resp.StatusCode, body)
	}
	done := pollJob(t, ts, j.ID)
	if done.State != api.JobCancelled || done.Error == nil || done.Error.Code != api.CodeCancelled {
		t.Fatalf("terminal view = %+v, want cancelled", done)
	}
}

// TestJobKillRestartResume is the durability tentpole end to end: a
// server killed mid-sweep leaves its record and completed items on
// disk; a new server on the same data directory resumes the job, skips
// every stored item, and produces a final result byte-identical to the
// synchronous batch.
func TestJobKillRestartResume(t *testing.T) {
	dir := t.TempDir()
	const sweep = `{"sweep":{"kernel":"vectoradd","resource":"cache","from":32,"to":256,"step":"2x"}}`

	// Phase 1: a server whose job executor stalls after the first item.
	firstDone := make(chan struct{})
	var settled atomic.Int32
	s1, err := New(Options{
		DataDir: dir,
		execWrap: func(inner jobs.Exec) jobs.Exec {
			return func(ctx context.Context, it jobs.Item, ic *jobs.ItemContext) (int, []byte, string) {
				if it.Index != 0 {
					// Stall every later item until the "kill".
					<-ctx.Done()
					return http.StatusRequestTimeout, errorBytes(errCancelled("killed")), "miss"
				}
				status, body, cache := inner(ctx, it, ic)
				if settled.Add(1) == 1 {
					close(firstDone)
				}
				return status, body, cache
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	j := submitJob(t, ts1, sweep)
	if j.Progress.Total != 4 {
		t.Fatalf("submit view = %+v, want 4 points", j)
	}
	select {
	case <-firstDone:
	case <-time.After(60 * time.Second):
		t.Fatal("first item never settled")
	}
	// The kill: abandon the job without terminal state, exactly like a
	// process death (Server.Close persists nothing extra).
	ts1.Close()
	s1.Close()

	// Phase 2: a fresh server on the same data directory.
	_, ts2 := newTestServer(t, Options{DataDir: dir})
	done := pollJob(t, ts2, j.ID)
	if done.State != api.JobDone {
		t.Fatalf("resumed job = %+v, want done", done)
	}
	if done.Resumes < 1 {
		t.Errorf("resumes = %d, want >= 1", done.Resumes)
	}
	// The item completed before the kill must replay from the store, not
	// re-simulate.
	if done.Progress.StoreHits < 1 {
		t.Errorf("progress = %+v, want >= 1 store hit", done.Progress)
	}
	m := snapshot(t, ts2)
	if m.Jobs.Resumed != 1 {
		t.Errorf("metrics jobs = %+v, want resumed 1", m.Jobs)
	}
	if m.Store.Hits < 1 || m.Store.Entries < 4 {
		t.Errorf("metrics store = %+v, want >= 1 hit and >= 4 entries", m.Store)
	}

	// Byte identity: the resumed job's result equals the synchronous
	// batch for the expanded sweep, computed on the restarted server.
	resp, jobBody := do(t, ts2, http.MethodGet, "/v1/jobs/"+j.ID+"/result", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resumed result: %d: %s", resp.StatusCode, jobBody)
	}
	var br api.BatchResponse
	if err := json.Unmarshal(jobBody, &br); err != nil {
		t.Fatal(err)
	}
	if items, err := br.Items(); err != nil || len(items) != 4 {
		t.Fatalf("resumed result has %d items (%v), want 4", len(items), err)
	}
	// Submitting the identical sweep as a new job on the restarted
	// server must produce identical bytes, all served without
	// simulating.
	j2 := submitJob(t, ts2, sweep)
	pollJob(t, ts2, j2.ID)
	resp2, body2 := do(t, ts2, http.MethodGet, "/v1/jobs/"+j2.ID+"/result", "")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("replay result: %d: %s", resp2.StatusCode, body2)
	}
	if !bytes.Equal(jobBody, body2) {
		t.Errorf("replayed sweep differs from resumed sweep:\n%s\nvs\n%s", body2, jobBody)
	}
}

// TestStoreReplayAcrossServers pins the /v1/run "stored" path: a second
// server sharing the data directory answers from the persistent store
// with byte-identical bytes and X-Cache: stored.
func TestStoreReplayAcrossServers(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newTestServer(t, Options{DataDir: dir})
	const req = `{"kernel":"sto"}`
	resp1, body1 := do(t, ts1, http.MethodPost, "/v1/run", req)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first run: %d: %s", resp1.StatusCode, body1)
	}
	ts1.Close()
	s1.Close()

	_, ts2 := newTestServer(t, Options{DataDir: dir})
	resp2, body2 := do(t, ts2, http.MethodPost, "/v1/run", req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("replayed run: %d: %s", resp2.StatusCode, body2)
	}
	if got := resp2.Header.Get("X-Cache"); got != "stored" {
		t.Errorf("X-Cache = %q, want stored", got)
	}
	if !bytes.Equal(body1, body2) {
		t.Errorf("stored replay differs:\n%s\nvs\n%s", body2, body1)
	}
	// Third request: the store replay re-entered the in-memory cache.
	resp3, _ := do(t, ts2, http.MethodPost, "/v1/run", req)
	if got := resp3.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("X-Cache after replay = %q, want hit", got)
	}
	if m := snapshot(t, ts2); m.SimRuns != 0 {
		t.Errorf("replayed server simulated %d times, want 0", m.SimRuns)
	}
}
