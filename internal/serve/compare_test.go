package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/api"
	"repro/internal/campaign"
)

const compareBody = `{
	"name": "duel",
	"machines": [
		{"name": "base"},
		{"name": "uni", "alloc_total_kb": 384},
		{"name": "fermi", "fermi_total_kb": 384}
	],
	"workloads": ["vectoradd", "sto"],
	"thresholds": {"ipc": 50}
}`

// TestJobCompare is the compare job's end-to-end contract: the job
// executes the campaign's compiled run matrix, its result bytes are
// byte-identical to the synchronous /v1/batch of those runs, and the
// decoded result renders the same tables as a local Execute.
func TestJobCompare(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	c, err := campaign.Parse([]byte(compareBody))
	if err != nil {
		t.Fatal(err)
	}

	j := submitJob(t, ts, `{"compare":`+compareBody+`}`)
	if j.Type != "compare" || j.Progress.Total != len(c.Runs) {
		t.Fatalf("submit view = %+v, want compare with %d items", j, len(c.Runs))
	}
	if j.Note != "compare duel (3 machines x 2 workloads)" {
		t.Errorf("note = %q", j.Note)
	}
	done := pollJob(t, ts, j.ID)
	if done.State != api.JobDone || done.Progress.Done != len(c.Runs) {
		t.Fatalf("terminal view = %+v", done)
	}

	// The job result is byte-identical to POST /v1/batch of the
	// campaign's compiled runs.
	breq, err := json.Marshal(api.BatchRequest{Runs: c.Runs})
	if err != nil {
		t.Fatal(err)
	}
	respSync, syncBody := do(t, ts, http.MethodPost, "/v1/batch", string(breq))
	if respSync.StatusCode != http.StatusOK {
		t.Fatalf("sync batch: %d: %s", respSync.StatusCode, syncBody)
	}
	respJob, jobBody := do(t, ts, http.MethodGet, "/v1/jobs/"+j.ID+"/result", "")
	if respJob.StatusCode != http.StatusOK {
		t.Fatalf("job result: %d: %s", respJob.StatusCode, jobBody)
	}
	if !bytes.Equal(jobBody, syncBody) {
		t.Errorf("compare job result differs from sync batch:\njob:  %s\nsync: %s", jobBody, syncBody)
	}

	// Decoding the job result renders byte-identical tables to a local
	// execution of the same campaign.
	var br api.BatchResponse
	if err := json.Unmarshal(jobBody, &br); err != nil {
		t.Fatal(err)
	}
	remote, err := c.ResultFromBatch(&br)
	if err != nil {
		t.Fatal(err)
	}
	local, err := c.Execute()
	if err != nil {
		t.Fatal(err)
	}
	rt, lt := remote.Tables(), local.Tables()
	if len(rt) != len(lt) {
		t.Fatalf("remote rendered %d tables, local %d", len(rt), len(lt))
	}
	for i := range rt {
		if rt[i].String() != lt[i].String() {
			t.Errorf("table %d differs:\n--- remote ---\n%s--- local ---\n%s", i, rt[i], lt[i])
		}
	}
	if len(remote.Regressions()) != len(local.Regressions()) {
		t.Errorf("regressions diverge: remote %v, local %v", remote.Regressions(), local.Regressions())
	}
}

// TestJobCompareValidation pins the 400 contract for bad campaigns.
func TestJobCompareValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	cases := []struct {
		body string
		want string
	}{
		{`{"compare":{"machines":[{"name":"m"}],"workloads":["sto"]}}`, "missing \"name\""},
		{`{"compare":{"name":"x","machines":[],"workloads":["sto"]}}`, "at least one machine"},
		{`{"compare":{"name":"x","machines":[{"name":"m"}],"workloads":["nope"]}}`, "nope"},
		{`{"compare":{"name":"x","machines":[{"name":"m"}],"workloads":["sto"],"metrics":["vibes"]}}`, "unknown metric"},
		{`{"compare":{"name":"x","machines":[{"name":"m","alloc_total_kb":384,"fermi_total_kb":384}],"workloads":["sto"]}}`, "at most one of"},
	}
	for _, c := range cases {
		resp, body := do(t, ts, http.MethodPost, "/v1/jobs", c.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s: status = %d, want 400", c.body, resp.StatusCode)
			continue
		}
		var env api.ErrorBody
		if err := json.Unmarshal(body, &env); err != nil || env.Error == nil {
			t.Errorf("POST %s: body %s is not an error envelope", c.body, body)
			continue
		}
		if !strings.HasPrefix(env.Error.Message, "compare:") || !strings.Contains(env.Error.Message, c.want) {
			t.Errorf("POST %s: error = %q, want compare: prefix containing %q", c.body, env.Error.Message, c.want)
		}
	}
}

// TestRunFermiTotalKB pins the fermi_total_kb override on the
// synchronous run endpoint: the Fermi-like preset with a fixed 256KB
// register file.
func TestRunFermiTotalKB(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, body := do(t, ts, http.MethodPost, "/v1/run", `{"kernel":"bfs","fermi_total_kb":384}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: %d: %s", resp.StatusCode, body)
	}
	var rr api.RunResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Config.Design != "fermi-like" || rr.Config.RFBytes != 256<<10 {
		t.Errorf("config = %+v, want fermi-like with 256KB RF", rr.Config)
	}
	if total := rr.Config.RFBytes + rr.Config.SharedBytes + rr.Config.CacheBytes; total != 384<<10 {
		t.Errorf("total capacity = %d, want 384KB", total)
	}

	for _, bad := range []string{
		`{"kernel":"bfs","fermi_total_kb":384,"alloc_total_kb":384}`,
		`{"kernel":"bfs","fermi_total_kb":256}`,
	} {
		resp, body := do(t, ts, http.MethodPost, "/v1/run", bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s: status = %d: %s, want 400", bad, resp.StatusCode, body)
		}
	}
}
