// Benchmarks regenerating every table and figure of the paper's evaluation
// (Gebhart et al., MICRO 2012). Each benchmark runs the corresponding
// experiment end-to-end on the simulator and reports the headline numbers
// as custom metrics; run with -v to see the full table.
//
//	go test -bench=. -benchmem
//	go test -bench=Figure9 -v
package repro_test

import (
	"flag"
	"math"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/perfbench"
	"repro/internal/workloads"
)

// benchTables opts into logging each experiment's rendered table once
// per benchmark; by default -v output stays a clean metrics stream.
var benchTables = flag.Bool("benchtables", false, "log each benchmarked experiment's rendered table")

// benchExperiment runs a named experiment b.N times and reports the
// wall time of one end-to-end regeneration as a metric. The rendered
// table is logged once, and only under -benchtables.
func benchExperiment(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r := core.NewRunner()
		t, err := harness.Run(r, name)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && *benchTables {
			b.Log("\n" + t.String())
		}
	}
	b.ReportMetric(b.Elapsed().Seconds()/float64(b.N), "sec/experiment")
}

// BenchmarkCycleLoop measures the steady-state cost of one SM
// scheduling action (sm.Step) with a hot trace cache — the simulator's
// innermost loop. CI gates on allocs/op staying zero; see
// internal/perfbench for the shared measurement body.
func BenchmarkCycleLoop(b *testing.B) { perfbench.RunCycleLoop(b) }

// BenchmarkTable1 regenerates the 26-workload characterization: per-thread
// register demand, dynamic-instruction spill ratios at 18-64 registers,
// full-occupancy RF size, shared bytes/thread, and DRAM traffic at
// 0/64/256 KB of cache.
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkFigure2 regenerates performance versus register-file capacity
// for dgemm, pcr, needle, and bfs (lines: registers/thread; points:
// 256-1024 threads).
func BenchmarkFigure2(b *testing.B) { benchExperiment(b, "figure2") }

// BenchmarkFigure3 regenerates performance versus shared-memory capacity
// for needle, pcr, lu, and sto.
func BenchmarkFigure3(b *testing.B) { benchExperiment(b, "figure3") }

// BenchmarkFigure4 regenerates performance versus cache capacity
// (32-512 KB) for bfs, pcr, mummer, and needle.
func BenchmarkFigure4(b *testing.B) { benchExperiment(b, "figure4") }

// BenchmarkTable4 regenerates the SRAM bank access energies of both
// designs (the CACTI-derived Table 4 points).
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4") }

// BenchmarkTable5 regenerates the bank-conflict breakdown (fraction of
// warp instructions by maximum accesses to one bank) for the partitioned
// and unified designs over the Figure 7 benchmarks.
func BenchmarkTable5(b *testing.B) { benchExperiment(b, "table5") }

// BenchmarkFigure7 regenerates the no-benefit comparison: 18 benchmarks
// under the 384 KB unified design versus the equal-capacity partitioned
// baseline (the paper reports every change within about 1%).
func BenchmarkFigure7(b *testing.B) { benchExperiment(b, "figure7") }

// BenchmarkFigure8 regenerates the Section 4.5 allocation decisions: how
// 384 KB of unified memory is split for each benefit-set benchmark.
func BenchmarkFigure8(b *testing.B) { benchExperiment(b, "figure8") }

// BenchmarkFigure9 regenerates the benefit comparison (the paper's
// headline: 4-71% speedups, up to 33% energy reduction, up to 32% less
// DRAM traffic) and reports the needle speedup and geometric-mean speedup
// as metrics.
func BenchmarkFigure9(b *testing.B) {
	var needle, geomean float64
	for i := 0; i < b.N; i++ {
		r := core.NewRunner()
		comps, err := r.Figure9()
		if err != nil {
			b.Fatal(err)
		}
		prod := 1.0
		for _, c := range comps {
			if c.Benchmark == "needle" {
				needle = c.PerfRatio
			}
			prod *= c.PerfRatio
		}
		geomean = math.Pow(prod, 1/float64(len(comps)))
		if i == 0 && *benchTables {
			t, err := harness.Figure9(r)
			if err != nil {
				b.Fatal(err)
			}
			b.Log("\n" + t.String())
		}
	}
	b.ReportMetric(needle, "needle-speedup")
	b.ReportMetric(geomean, "geomean-speedup")
}

// BenchmarkFigure10 regenerates the Fermi-like limited-flexibility
// comparison for the benefit set.
func BenchmarkFigure10(b *testing.B) { benchExperiment(b, "figure10") }

// BenchmarkTable6 regenerates capacity sensitivity: unified designs of
// 128/256/384 KB versus the baseline partitioned design.
func BenchmarkTable6(b *testing.B) { benchExperiment(b, "table6") }

// BenchmarkFigure11 regenerates the needle blocking-factor tuning study.
func BenchmarkFigure11(b *testing.B) { benchExperiment(b, "figure11") }

// BenchmarkBaselineSM measures raw simulator throughput on the baseline
// configuration across the full benchmark registry (cycles simulated per
// wall-clock second).
func BenchmarkBaselineSM(b *testing.B) {
	kernels := workloads.All()
	b.ResetTimer()
	var cycles int64
	for i := 0; i < b.N; i++ {
		r := core.NewRunner()
		for _, k := range kernels {
			res, err := r.Baseline(k)
			if err != nil {
				b.Fatal(err)
			}
			cycles += res.Counters.Cycles
		}
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/s")
}

// BenchmarkAblationScatter compares the simple single-bank-per-cluster
// unified design against the Section 4.2 aggressive scatter/gather
// variant (the paper measured +0.5% average and shipped the simple one).
func BenchmarkAblationScatter(b *testing.B) {
	var avg float64
	for i := 0; i < b.N; i++ {
		r := core.NewRunner()
		rows, err := r.AblateScatter(workloads.All())
		if err != nil {
			b.Fatal(err)
		}
		prod := 1.0
		for _, row := range rows {
			prod *= row.Speedup
		}
		avg = math.Pow(prod, 1/float64(len(rows)))
	}
	b.ReportMetric(avg, "aggressive-speedup")
}

// BenchmarkRepartitioning measures the Section 4.4 extension: a
// three-kernel application (register-, shared-, and cache-hungry) with
// per-kernel repartitioning versus a fixed baseline split.
func BenchmarkRepartitioning(b *testing.B) {
	var gain float64
	names := []string{"dgemm", "needle", "bfs"}
	for i := 0; i < b.N; i++ {
		r := core.NewRunner()
		var ks []*workloads.Kernel
		for _, n := range names {
			k, err := workloads.ByName(n)
			if err != nil {
				b.Fatal(err)
			}
			ks = append(ks, k)
		}
		flex, err := r.RunSequence(ks, config.BaselineTotalBytes)
		if err != nil {
			b.Fatal(err)
		}
		fixed, err := r.RunSequenceFixed(ks, config.Baseline())
		if err != nil {
			b.Fatal(err)
		}
		gain = float64(fixed.Cycles) / float64(flex.Cycles)
	}
	b.ReportMetric(gain, "repartitioning-speedup")
}

// BenchmarkValidation runs the Section 5.1 methodology check: single-SM
// simulation versus a 4-SM chip sharing a channel-interleaved DRAM system.
func BenchmarkValidation(b *testing.B) { benchExperiment(b, "validation") }
